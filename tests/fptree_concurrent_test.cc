// Concurrent FPTree: single-threaded semantics, multi-threaded stress under
// both HTM backends (TL2 and global lock), recovery, and linearizability
// smoke checks (per-thread key partitions plus shared-key contention).

#include "core/fptree_concurrent.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <map>
#include <set>

#include "scm/latency.h"
#include "util/random.h"
#include "util/threading.h"

namespace fptree {
namespace core {
namespace {

using scm::Pool;

std::string TestPath(const std::string& name) {
  return "/tmp/fptree_test_" + std::to_string(::getpid()) + "_" + name;
}

using SmallTree = ConcurrentFPTree<uint64_t, 8, 8>;
using DefaultTree = ConcurrentFPTree<>;

class ConcurrentFPTreeTest : public ::testing::TestWithParam<htm::Backend> {
 protected:
  void SetUp() override {
    scm::LatencyModel::Disable();
    path_ = TestPath("cfptree");
    Pool::Destroy(path_).ok();
    Open(true);
  }

  void TearDown() override {
    tree_.reset();
    pool_.reset();
    Pool::Destroy(path_).ok();
  }

  void Open(bool create) {
    tree_.reset();
    pool_.reset();
    Pool::Options opts{.size = 512u << 20, .randomize_base = true};
    if (create) {
      ASSERT_TRUE(Pool::Create(path_, 1, opts, &pool_).ok());
    } else {
      ASSERT_TRUE(Pool::Open(path_, 1, opts, &pool_).ok());
    }
    tree_ = std::make_unique<SmallTree>(pool_.get(), GetParam());
  }

  std::string path_;
  std::unique_ptr<Pool> pool_;
  std::unique_ptr<SmallTree> tree_;
};

TEST_P(ConcurrentFPTreeTest, SingleThreadedBasicOps) {
  uint64_t v;
  EXPECT_FALSE(tree_->Find(1, &v));
  EXPECT_TRUE(tree_->Insert(1, 10));
  EXPECT_FALSE(tree_->Insert(1, 11));
  ASSERT_TRUE(tree_->Find(1, &v));
  EXPECT_EQ(v, 10u);
  EXPECT_TRUE(tree_->Update(1, 12));
  ASSERT_TRUE(tree_->Find(1, &v));
  EXPECT_EQ(v, 12u);
  EXPECT_FALSE(tree_->Update(9, 1));
  EXPECT_TRUE(tree_->Erase(1));
  EXPECT_FALSE(tree_->Erase(1));
  EXPECT_FALSE(tree_->Find(1, &v));
}

TEST_P(ConcurrentFPTreeTest, SingleThreadedDifferential) {
  std::map<uint64_t, uint64_t> model;
  Random64 rng(5);
  for (int i = 0; i < 20000; ++i) {
    uint64_t key = rng.Uniform(700);
    switch (rng.Uniform(4)) {
      case 0: {
        bool r = tree_->Insert(key, i);
        EXPECT_EQ(r, model.emplace(key, i).second);
        break;
      }
      case 1: {
        bool r = tree_->Update(key, i);
        EXPECT_EQ(r, model.count(key) == 1);
        if (r) model[key] = i;
        break;
      }
      case 2:
        EXPECT_EQ(tree_->Erase(key), model.erase(key) == 1);
        break;
      default: {
        uint64_t v;
        bool r = tree_->Find(key, &v);
        auto it = model.find(key);
        ASSERT_EQ(r, it != model.end());
        if (r) {
          EXPECT_EQ(v, it->second);
        }
      }
    }
  }
  std::string why;
  EXPECT_TRUE(tree_->CheckConsistency(&why)) << why;
}

TEST_P(ConcurrentFPTreeTest, DisjointParallelInserts) {
  constexpr uint32_t kThreads = 8;
  constexpr uint64_t kPerThread = 4000;
  ThreadGroup tg;
  tg.Spawn(kThreads, [&](uint32_t id) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      uint64_t key = id * kPerThread + i;
      ASSERT_TRUE(tree_->Insert(key, key * 2)) << key;
    }
  });
  tg.Join();
  EXPECT_EQ(tree_->Size(), kThreads * kPerThread);
  uint64_t v;
  for (uint64_t k = 0; k < kThreads * kPerThread; ++k) {
    ASSERT_TRUE(tree_->Find(k, &v)) << k;
    EXPECT_EQ(v, k * 2);
  }
  std::string why;
  EXPECT_TRUE(tree_->CheckConsistency(&why)) << why;
}

TEST_P(ConcurrentFPTreeTest, ContendedInsertsExactlyOneWinner) {
  constexpr uint32_t kThreads = 8;
  constexpr uint64_t kKeys = 2000;
  std::atomic<uint64_t> wins{0};
  ThreadGroup tg;
  tg.Spawn(kThreads, [&](uint32_t id) {
    uint64_t local = 0;
    for (uint64_t k = 0; k < kKeys; ++k) {
      if (tree_->Insert(k, id)) ++local;
    }
    wins.fetch_add(local);
  });
  tg.Join();
  EXPECT_EQ(wins.load(), kKeys) << "every key must have exactly one winner";
  EXPECT_EQ(tree_->Size(), kKeys);
}

TEST_P(ConcurrentFPTreeTest, MixedWorkloadStress) {
  // Pre-populate, then hammer with a 50/50-ish mix including deletes and
  // updates across a small hot key range to maximize conflicts.
  for (uint64_t k = 0; k < 512; ++k) {
    ASSERT_TRUE(tree_->Insert(k, 1));
  }
  constexpr uint32_t kThreads = 8;
  std::atomic<int64_t> delta{0};
  ThreadGroup tg;
  tg.Spawn(kThreads, [&](uint32_t id) {
    Random64 rng(id * 7919 + 13);
    int64_t local = 0;
    for (int i = 0; i < 8000; ++i) {
      uint64_t key = rng.Uniform(1024);
      switch (rng.Uniform(4)) {
        case 0:
          if (tree_->Insert(key, id)) ++local;
          break;
        case 1:
          tree_->Update(key, id);
          break;
        case 2:
          if (tree_->Erase(key)) --local;
          break;
        default: {
          uint64_t v;
          tree_->Find(key, &v);
        }
      }
    }
    delta.fetch_add(local);
  });
  tg.Join();
  EXPECT_EQ(tree_->Size(), static_cast<size_t>(512 + delta.load()));
  std::string why;
  EXPECT_TRUE(tree_->CheckConsistency(&why)) << why;
}

TEST_P(ConcurrentFPTreeTest, ReadersNeverSeeTornState) {
  // Writers continuously update a fixed key set with value == key * epoch;
  // readers must only ever observe values consistent with SOME epoch.
  for (uint64_t k = 0; k < 64; ++k) {
    ASSERT_TRUE(tree_->Insert(k, k));
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  ThreadGroup tg;
  tg.Spawn(2, [&](uint32_t id) {
    Random64 rng(id + 100);
    for (int e = 2; !stop.load(std::memory_order_relaxed); ++e) {
      uint64_t k = rng.Uniform(64);
      tree_->Update(k, k * e);
    }
  });
  tg.Spawn(4, [&](uint32_t id) {
    Random64 rng(id);
    for (int i = 0; i < 40000; ++i) {
      uint64_t k = rng.Uniform(64);
      uint64_t v;
      if (!tree_->Find(k, &v)) {
        torn.store(true);
        break;
      }
      if (k != 0 && v % k != 0) {
        torn.store(true);
        break;
      }
    }
  });
  // Readers finish; then stop writers.
  // (ThreadGroup joins all; use a separate watcher.)
  std::thread stopper([&] {
    // Readers do bounded work; give them time then stop writers.
    std::this_thread::sleep_for(std::chrono::milliseconds(1500));
    stop.store(true);
  });
  tg.Join();
  stop.store(true);
  stopper.join();
  EXPECT_FALSE(torn.load());
}

TEST_P(ConcurrentFPTreeTest, RecoveryAfterCleanClose) {
  std::map<uint64_t, uint64_t> model;
  for (uint64_t k : ShuffledRange(3000, 21)) {
    ASSERT_TRUE(tree_->Insert(k, k ^ 0xF00));
    model[k] = k ^ 0xF00;
  }
  for (uint64_t k = 0; k < 3000; k += 5) {
    ASSERT_TRUE(tree_->Erase(k));
    model.erase(k);
  }
  Open(false);  // reopen: micro-log recovery + inner rebuild
  EXPECT_EQ(tree_->Size(), model.size());
  uint64_t v;
  for (auto& [k, val] : model) {
    ASSERT_TRUE(tree_->Find(k, &v)) << k;
    EXPECT_EQ(v, val);
  }
  ASSERT_TRUE(tree_->Insert(999999, 7));
  EXPECT_TRUE(tree_->Find(999999, &v));
}

TEST_P(ConcurrentFPTreeTest, RangeScanSortedAndComplete) {
  for (uint64_t k : ShuffledRange(500, 23)) {
    ASSERT_TRUE(tree_->Insert(k * 2, k));
  }
  std::vector<std::pair<uint64_t, uint64_t>> out;
  tree_->RangeScan(100, 25, &out);
  ASSERT_EQ(out.size(), 25u);
  uint64_t expect = 100;
  for (auto& [k, v] : out) {
    EXPECT_EQ(k, expect);
    EXPECT_EQ(v, k / 2);
    expect += 2;
  }
}

TEST_P(ConcurrentFPTreeTest, RangeScanUnderConcurrentWriters) {
  // Writers mutate a disjoint high key range while scanners walk the
  // stable low range: scans must always return the full, sorted low range.
  for (uint64_t k = 0; k < 256; ++k) {
    ASSERT_TRUE(tree_->Insert(k, k));
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> bad{false};
  ThreadGroup writers;
  writers.Spawn(2, [&](uint32_t id) {
    Random64 rng(id);
    for (uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      uint64_t k = 1000 + rng.Uniform(4000);
      if (rng.Bernoulli(0.5)) {
        tree_->Insert(k, i);
      } else {
        tree_->Erase(k);
      }
    }
  });
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (int scan = 0; scan < 200; ++scan) {
    tree_->RangeScan(0, 256, &out);
    if (out.size() != 256) {
      bad.store(true);
      break;
    }
    for (uint64_t k = 0; k < 256; ++k) {
      if (out[k].first != k) {
        bad.store(true);
        break;
      }
    }
    if (bad.load()) break;
  }
  stop.store(true);
  writers.Join();
  EXPECT_FALSE(bad.load());
}

TEST_P(ConcurrentFPTreeTest, CrashWindowMatrix) {
  // Sweep every named crash point of the concurrent tree's persistent
  // paths; after each crash + recovery the tree must be consistent and
  // still accept the interrupted key.
  const char* points[] = {
      "cfptree.insert.before_bitmap", "cfptree.split.logged",
      "cfptree.split.allocated",      "cfptree.split.copied",
      "cfptree.split.new_bitmap",     "cfptree.split.old_bitmap",
      "cfptree.split.linked",         "cfptree.delete.logged",
      "cfptree.delete.prev_logged",   "cfptree.delete.unlinked",
  };
  for (const char* point : points) {
    Pool::Destroy(path_).ok();
    Open(true);
    scm::CrashSim::Enable();
    for (uint64_t k = 0; k < 64; ++k) {
      ASSERT_TRUE(tree_->Insert(k, k));
    }
    scm::CrashSim::ArmCrashPoint(point);
    bool crashed = false;
    uint64_t crash_key = 0;
    try {
      for (uint64_t k = 64; k < 256; ++k) {
        crash_key = k;
        tree_->Insert(k, k);
      }
      // Not all points are insert-path; drive deletes too.
      for (uint64_t k = 0; k < 256; ++k) {
        crash_key = k;
        tree_->Erase(k);
      }
    } catch (const scm::CrashException&) {
      crashed = true;
    }
    scm::CrashSim::DisarmAll();
    if (!crashed) continue;  // window unreachable in this trace
    scm::CrashSim::SimulateCrash();
    Open(false);
    scm::CrashSim::Disable();
    std::string why;
    ASSERT_TRUE(tree_->CheckConsistency(&why)) << point << ": " << why;
    // The tree remains fully usable for the interrupted key.
    uint64_t v;
    if (!tree_->Find(crash_key, &v)) {
      ASSERT_TRUE(tree_->Insert(crash_key, crash_key)) << point;
    }
    ASSERT_TRUE(tree_->Find(crash_key, &v)) << point;
  }
}

TEST_P(ConcurrentFPTreeTest, RecoveryAfterCrashMidWorkload) {
  scm::CrashSim::Enable();
  for (uint64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(tree_->Insert(k, k));
  }
  scm::CrashSim::ArmCrashPoint("cfptree.split.copied");
  bool crashed = false;
  try {
    for (uint64_t k = 200; k < 400; ++k) {
      tree_->Insert(k, k);
    }
  } catch (const scm::CrashException&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);
  scm::CrashSim::SimulateCrash();
  Open(false);
  scm::CrashSim::Disable();
  uint64_t v;
  for (uint64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(tree_->Find(k, &v)) << k;
  }
  std::string why;
  EXPECT_TRUE(tree_->CheckConsistency(&why)) << why;
}

INSTANTIATE_TEST_SUITE_P(Backends, ConcurrentFPTreeTest,
                         ::testing::Values(htm::Backend::kTl2,
                                           htm::Backend::kGlobalLock),
                         [](const auto& info) {
                           return info.param == htm::Backend::kTl2
                                      ? "Tl2"
                                      : "GlobalLock";
                         });

}  // namespace
}  // namespace core
}  // namespace fptree
