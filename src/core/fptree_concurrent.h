// Copyright (c) FPTree reproduction authors.
//
// Concurrent FPTree (paper §4.4 "Selective Concurrency" and §5's
// Algorithms 1, 2, 5, 8): the tree traversal and all inner-node changes run
// inside speculative transactions (HTM on the paper's hardware; our
// htm::HtmEngine provides the same semantics in software — see htm/htm.h),
// while leaf modifications — which need cache-line flushes that would abort
// a hardware transaction — happen OUTSIDE transactions under fine-grained
// leaf locks that are themselves acquired transactionally.
//
// Per the paper (§5), this version does NOT use leaf groups: amortized
// allocation is a central synchronization point that hinders scalability;
// leaves are allocated directly from the (internally locked) persistent
// allocator. Split and delete micro-logs live in fixed persistent arrays
// indexed through a lock-free claim mask (the paper's "transient lock-free
// queues").
//
// Memory-safety contract with the software HTM (htm/htm.h): all
// transactionally tracked slots are 8-byte words; inner nodes come from a
// never-unmapped arena and are never recycled, so a doomed transaction's
// stale pointer loads always hit mapped memory and are discarded at
// validation.

#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/recovery.h"
#include "htm/htm.h"
#include "scm/alloc.h"
#include "scm/crash.h"
#include "scm/pmem.h"
#include "scm/pool.h"
#include "util/hash.h"
#include "util/simd.h"
#include "util/threading.h"
#include "util/timer.h"

namespace fptree {
namespace core {

/// \brief DRAM arena for inner nodes: chunked bump allocation, memory is
/// never returned to the OS (stale transactional reads stay mapped).
class NodeArena {
 public:
  explicit NodeArena(size_t node_size) : node_size_(node_size) {}

  void* Allocate() {
    std::lock_guard<std::mutex> l(mu_);
    if (offset_ + node_size_ > kChunkSize || chunks_.empty()) {
      chunks_.emplace_back(new char[kChunkSize]);
      offset_ = 0;
    }
    void* p = chunks_.back().get() + offset_;
    offset_ += node_size_;
    ++allocated_;
    return p;
  }

  uint64_t MemoryBytes() const { return chunks_.size() * kChunkSize; }
  uint64_t allocated_nodes() const { return allocated_; }

 private:
  static constexpr size_t kChunkSize = 1 << 20;

  const size_t node_size_;
  std::mutex mu_;
  std::vector<std::unique_ptr<char[]>> chunks_;
  size_t offset_ = kChunkSize + 1;
  uint64_t allocated_ = 0;
};

/// \brief Lock-free claim mask for the persistent micro-log arrays.
class LogClaimMask {
 public:
  int Acquire() {
    for (;;) {
      uint64_t cur = mask_.load(std::memory_order_acquire);
      while (cur == 0) {
        cur = mask_.load(std::memory_order_acquire);
      }
      int bit = __builtin_ctzll(cur);
      if (mask_.compare_exchange_weak(cur, cur & ~(uint64_t{1} << bit),
                                      std::memory_order_acq_rel)) {
        return bit;
      }
    }
  }

  void Release(int bit) {
    mask_.fetch_or(uint64_t{1} << bit, std::memory_order_acq_rel);
  }

 private:
  std::atomic<uint64_t> mask_{~uint64_t{0}};
};

/// \brief Concurrent FPTree. Default node sizes per paper Table 1
/// (FPTreeC: inner 128, leaf 64 — smaller inner nodes reduce transactional
/// conflict probability).
template <typename Value = uint64_t, size_t kLeafCap = 64,
          size_t kInnerCap = 128>
class ConcurrentFPTree {
  static_assert(kLeafCap >= 2 && kLeafCap <= 64);
  static_assert(std::is_trivially_copyable_v<Value>);

 public:
  using Key = uint64_t;

  struct KV {
    Key key;
    Value value;
  };

  struct alignas(64) LeafNode {
    uint8_t fingerprints[kLeafCap];
    uint64_t bitmap;
    scm::PPtr<LeafNode> next;
    uint64_t lock_word;
    KV kv[kLeafCap];
  };

  static constexpr size_t kNumLogs = 64;

  struct alignas(64) SplitLog {
    scm::PPtr<LeafNode> p_current;
    scm::PPtr<LeafNode> p_new;
  };

  struct alignas(64) DeleteLog {
    scm::PPtr<LeafNode> p_current;
    scm::PPtr<LeafNode> p_prev;
  };

  struct alignas(64) PRoot {
    static constexpr uint64_t kMagic = 0xF97EE000000005ULL;

    uint64_t magic;
    scm::PPtr<LeafNode> head;
    SplitLog split_logs[kNumLogs];
    DeleteLog delete_logs[kNumLogs];
  };

  explicit ConcurrentFPTree(scm::Pool* pool,
                            htm::Backend backend = htm::Backend::kTl2)
      : pool_(pool), htm_(backend), arena_(sizeof(Inner)) {
    AttachOrInit();
  }

  ConcurrentFPTree(const ConcurrentFPTree&) = delete;
  ConcurrentFPTree& operator=(const ConcurrentFPTree&) = delete;

  // --- Base operations (paper Alg. 1, 2, 5, 8) -----------------------------

  /// Concurrent Find (Alg. 1).
  bool Find(Key key, Value* value) {
    htm::Tx tx(&htm_);
    for (;;) {
      SCM_CRASH_POINT("cfptree.retry");
      tx.Begin();
      LeafNode* leaf = FindLeafTx(&tx, key, nullptr);
      if (!tx.ok() || leaf == nullptr) continue;
      if ((tx.Load(&leaf->lock_word) & 1) != 0) {
        tx.UserAbort();
        continue;
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      bool found = false;
      Value out{};
      int slot = ScanLeaf(leaf, key);
      if (slot >= 0) {
        found = true;
        out = leaf->kv[slot].value;
      }
      if (!tx.Commit()) continue;
      if (found) *value = out;
      return found;
    }
  }

  /// Concurrent Insert (Alg. 2). Returns false if the key exists.
  bool Insert(Key key, const Value& value) {
    bool inserted = false;
    return InsertChecked(key, value, &inserted).ok() && inserted;
  }

  /// Status-propagating insert (DESIGN.md §12): ResourceExhausted means the
  /// pool could not hold the split leaf; the leaf lock is released and the
  /// tree is unchanged.
  Status InsertChecked(Key key, const Value& value, bool* inserted) {
    *inserted = false;
    enum class Decision { kInsert, kSplit, kExists };
    htm::Tx tx(&htm_);
    LeafNode* leaf = nullptr;
    Decision decision{};
    for (;;) {
      SCM_CRASH_POINT("cfptree.retry");
      tx.Begin();
      leaf = FindLeafTx(&tx, key, nullptr);
      if (!tx.ok() || leaf == nullptr) continue;
      if ((tx.Load(&leaf->lock_word) & 1) != 0) {
        tx.UserAbort();
        continue;
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (ScanLeaf(leaf, key) >= 0) {
        decision = Decision::kExists;
        if (!tx.Commit()) continue;
        return Status::OK();
      }
      decision = IsFull(leaf) ? Decision::kSplit : Decision::kInsert;
      tx.Store(&leaf->lock_word, NewOddGen());  // never persisted (Alg. 2)
      if (tx.Commit()) break;
    }

    // Outside any transaction: persistent work under the leaf lock.
    LeafNode* new_leaf = nullptr;
    Key split_key = 0;
    LeafNode* target = leaf;
    if (decision == Decision::kSplit) {
      new_leaf = SplitLeaf(leaf, &split_key);
      if (new_leaf == nullptr) {
        UnlockLeaf(leaf);
        return NoSpace();
      }
      if (key > split_key) target = new_leaf;
    }
    InsertKV(target, key, value);
    size_.fetch_add(1, std::memory_order_relaxed);

    if (decision == Decision::kSplit) {
      UpdateParents(split_key, new_leaf);
      UnlockLeaf(new_leaf);
    }
    UnlockLeaf(leaf);
    *inserted = true;
    return Status::OK();
  }

  /// Concurrent Update (Alg. 8). Returns false if the key is absent.
  bool Update(Key key, const Value& value) {
    bool updated = false;
    return UpdateChecked(key, value, &updated).ok() && updated;
  }

  /// Status-propagating update: on ResourceExhausted the old value remains
  /// intact and readable, and the leaf lock is released.
  Status UpdateChecked(Key key, const Value& value, bool* updated) {
    *updated = false;
    enum class Decision { kUpdate, kSplit, kAbsent };
    htm::Tx tx(&htm_);
    LeafNode* leaf = nullptr;
    Decision decision{};
    int prev_slot = -1;
    for (;;) {
      SCM_CRASH_POINT("cfptree.retry");
      tx.Begin();
      leaf = FindLeafTx(&tx, key, nullptr);
      if (!tx.ok() || leaf == nullptr) continue;
      if ((tx.Load(&leaf->lock_word) & 1) != 0) {
        tx.UserAbort();
        continue;
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      prev_slot = ScanLeaf(leaf, key);
      if (prev_slot < 0) {
        decision = Decision::kAbsent;
        if (!tx.Commit()) continue;
        return Status::OK();
      }
      decision = IsFull(leaf) ? Decision::kSplit : Decision::kUpdate;
      tx.Store(&leaf->lock_word, NewOddGen());
      if (tx.Commit()) break;
    }

    LeafNode* new_leaf = nullptr;
    Key split_key = 0;
    LeafNode* target = leaf;
    if (decision == Decision::kSplit) {
      new_leaf = SplitLeaf(leaf, &split_key);
      if (new_leaf == nullptr) {
        UnlockLeaf(leaf);
        return NoSpace();
      }
      if (key > split_key) target = new_leaf;
      prev_slot = ScanLeaf(target, key);
      assert(prev_slot >= 0);
    }
    // Write the new version into a free slot; one p-atomic bitmap store
    // publishes the insert and the delete together.
    int slot = FindFirstZero(target);
    assert(slot >= 0);
    scm::pmem::Store(&target->kv[slot], KV{key, value});
    scm::pmem::Store(&target->fingerprints[slot], Fingerprint(key));
    scm::pmem::Persist(&target->kv[slot]);
    scm::pmem::Persist(&target->fingerprints[slot], 1);
    uint64_t bmp = target->bitmap;
    bmp &= ~(uint64_t{1} << prev_slot);
    bmp |= uint64_t{1} << slot;
    scm::pmem::StorePersist(&target->bitmap, bmp);

    if (decision == Decision::kSplit) {
      UpdateParents(split_key, new_leaf);
      UnlockLeaf(new_leaf);
    }
    UnlockLeaf(leaf);
    *updated = true;
    return Status::OK();
  }

  /// Concurrent insert-or-update in one HTM acquisition (index API v3):
  /// merges the Alg. 2 and Alg. 8 decision loops — one FindLeafTx probe
  /// decides between the insert and update tails, so there is no window
  /// between a failed Insert and the Update where a concurrent Erase could
  /// force a retry. Returns true when the key was newly inserted.
  bool Upsert(Key key, const Value& value) {
    bool inserted = false;
    UpsertChecked(key, value, &inserted);
    return inserted;
  }

  /// Status-propagating upsert; on ResourceExhausted nothing was applied
  /// and the leaf lock is released.
  Status UpsertChecked(Key key, const Value& value, bool* inserted) {
    *inserted = false;
    enum class Decision { kInsert, kInsertSplit, kUpdate, kUpdateSplit };
    htm::Tx tx(&htm_);
    LeafNode* leaf = nullptr;
    Decision decision{};
    int prev_slot = -1;
    for (;;) {
      SCM_CRASH_POINT("cfptree.retry");
      tx.Begin();
      leaf = FindLeafTx(&tx, key, nullptr);
      if (!tx.ok() || leaf == nullptr) continue;
      if ((tx.Load(&leaf->lock_word) & 1) != 0) {
        tx.UserAbort();
        continue;
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      prev_slot = ScanLeaf(leaf, key);
      if (prev_slot < 0) {
        decision = IsFull(leaf) ? Decision::kInsertSplit : Decision::kInsert;
      } else {
        decision = IsFull(leaf) ? Decision::kUpdateSplit : Decision::kUpdate;
      }
      tx.Store(&leaf->lock_word, NewOddGen());
      if (tx.Commit()) break;
    }

    // Outside any transaction: persistent work under the leaf lock.
    LeafNode* new_leaf = nullptr;
    Key split_key = 0;
    LeafNode* target = leaf;
    bool split = decision == Decision::kInsertSplit ||
                 decision == Decision::kUpdateSplit;
    if (split) {
      new_leaf = SplitLeaf(leaf, &split_key);
      if (new_leaf == nullptr) {
        UnlockLeaf(leaf);
        return NoSpace();
      }
      if (key > split_key) target = new_leaf;
    }

    if (decision == Decision::kInsert || decision == Decision::kInsertSplit) {
      InsertKV(target, key, value);
      size_.fetch_add(1, std::memory_order_relaxed);
      *inserted = true;
    } else {
      if (split) {
        prev_slot = ScanLeaf(target, key);
        assert(prev_slot >= 0);
      }
      int slot = FindFirstZero(target);
      assert(slot >= 0);
      scm::pmem::Store(&target->kv[slot], KV{key, value});
      scm::pmem::Store(&target->fingerprints[slot], Fingerprint(key));
      scm::pmem::Persist(&target->kv[slot]);
      scm::pmem::Persist(&target->fingerprints[slot], 1);
      uint64_t bmp = target->bitmap;
      bmp &= ~(uint64_t{1} << prev_slot);
      bmp |= uint64_t{1} << slot;
      scm::pmem::StorePersist(&target->bitmap, bmp);
    }

    if (split) {
      UpdateParents(split_key, new_leaf);
      UnlockLeaf(new_leaf);
    }
    UnlockLeaf(leaf);
    return Status::OK();
  }

  /// Concurrent Delete (Alg. 5). Returns false if the key is absent.
  bool Erase(Key key) {
    enum class Decision { kDelete, kLeafEmpty, kAbsent };
    htm::Tx tx(&htm_);
    LeafNode* leaf = nullptr;
    LeafNode* prev = nullptr;
    Decision decision{};
    for (;;) {
      SCM_CRASH_POINT("cfptree.retry");
      tx.Begin();
      prev = nullptr;
      PathRec path;
      leaf = FindLeafTx(&tx, key, &path);
      if (!tx.ok() || leaf == nullptr) continue;
      if ((tx.Load(&leaf->lock_word) & 1) != 0) {
        tx.UserAbort();
        continue;
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      int slot = ScanLeaf(leaf, key);
      if (slot < 0) {
        decision = Decision::kAbsent;
        if (!tx.Commit()) continue;
        return false;
      }
      bool head_only =
          leaf == proot_->head.get() && scm::pmem::Load(&leaf->next.offset) == 0;
      if (BitmapCount(leaf) == 1 && !head_only) {
        prev = FindPrevLeafTx(&tx, &path);
        if (!tx.ok()) continue;
        if (prev != nullptr && (tx.Load(&prev->lock_word) & 1) != 0) {
          tx.UserAbort();
          continue;
        }
        decision = Decision::kLeafEmpty;
        tx.Store(&leaf->lock_word, NewOddGen());
        if (prev != nullptr) tx.Store(&prev->lock_word, NewOddGen());
        // The leaf becomes unreachable: remove it from the inner nodes
        // inside this same transaction (no persistence primitives needed).
        RemoveLeafFromInnerTx(&tx, &path);
        if (!tx.ok()) {
          tx.UserAbort();
          continue;
        }
        if (tx.Commit()) break;
      } else {
        decision = Decision::kDelete;
        tx.Store(&leaf->lock_word, NewOddGen());
        if (tx.Commit()) break;
      }
    }

    if (decision == Decision::kLeafEmpty) {
      DeleteLeaf(leaf, prev);
      if (prev != nullptr) UnlockLeaf(prev);
      // `leaf` was deallocated; no unlock (paper: it is unreachable).
    } else {
      int slot = ScanLeaf(leaf, key);
      assert(slot >= 0);
      scm::pmem::StorePersist(&leaf->bitmap,
                              leaf->bitmap & ~(uint64_t{1} << slot));
      UnlockLeaf(leaf);
    }
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  /// Ordered scan of up to `limit` pairs with key >= start. Each leaf is
  /// read under the transactional lock-word protocol (per-leaf
  /// consistency; the scan as a whole is weakly consistent with respect to
  /// concurrent writers, like range queries over the paper's leaf list).
  /// Memory safety vs concurrent DeleteLeaf: every snapshot is validated
  /// by a generation witness — each lock acquisition stores a globally
  /// unique odd value and each release a globally unique even value, so an
  /// unchanged lock word across the snapshot proves the leaf was untouched
  /// for the whole window (a plain locked/unlocked bit would admit ABA: a
  /// split that clears the upper bitmap half can be followed by reinserts
  /// that restore the identical bitmap, with the lock cycling through the
  /// same values, and the snapshot would mix a pre-split next pointer with
  /// post-refill slots and skip the new sibling). The next-leaf offset is
  /// captured inside that witnessed window, so it cannot come from a
  /// recycled leaf. The successor itself can still be deleted after our
  /// snapshot and its memory recycled into a live leaf for a different key
  /// range, so each hop is a handshake: snapshot the successor first, then
  /// re-check the predecessor's generation — unlinking the successor must
  /// lock the predecessor (bumping its generation), so a recycled
  /// successor cannot pass both checks. The entry leaf has no predecessor;
  /// it is confirmed by a second descent mapping the cursor to the same
  /// leaf after the snapshot. A leaf that stays locked (a descheduled
  /// writer, or a deleted leaf whose lock word stays odd forever) is
  /// retried with bounded exponential backoff and then abandoned; every
  /// failure path re-descends from the root at the smallest key not yet
  /// emitted, so output stays sorted and duplicate-free.
  void RangeScan(Key start, size_t limit,
                 std::vector<std::pair<Key, Value>>* out) {
    out->clear();
    if (limit == 0) return;
    htm::Tx tx(&htm_);
    Key cursor = start;
    std::vector<std::pair<Key, Value>> in_leaf, in_succ;
    // Guard against pathological walks over leaves recycled mid-scan
    // (weakly consistent with concurrent deletes).
    const uint64_t max_hops = pool_->size() / sizeof(LeafNode) + 2;
    uint64_t guard = max_hops;
    uint64_t gen = 0;
    uint64_t next_off = 0;
    LeafNode* leaf = EnterScan(&tx, cursor, &in_leaf, &next_off, &gen);
    for (;;) {
      std::sort(in_leaf.begin(), in_leaf.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (auto& p : in_leaf) {
        if (out->size() >= limit) return;
        out->push_back(p);
        if (p.first == ~Key{0}) return;  // key-space max: cursor is done
        cursor = p.first + 1;
      }
      if (out->size() >= limit || next_off == 0) return;
      LeafNode* succ = scm::PPtr<LeafNode>{pool_->id(), next_off}.get();
      uint64_t succ_gen = 0;
      uint64_t succ_next = 0;
      if (guard-- > 0 &&
          SnapshotLeaf(succ, cursor, &in_succ, &succ_next, &succ_gen) &&
          RevalidateLeaf(leaf, gen)) {
        leaf = succ;
        gen = succ_gen;
        next_off = succ_next;
        in_leaf.swap(in_succ);
      } else {
        leaf = EnterScan(&tx, cursor, &in_leaf, &next_off, &gen);
        guard = max_hops;  // fresh descent, fresh chain budget
      }
    }
  }

  // --- Batched operations (batch pipeline, DESIGN.md §11) ------------------

  /// Keys per staged MultiGet descent group. Smaller than the
  /// single-threaded trees' chunk: the whole chunk's descents share one
  /// speculative transaction, and a larger read set raises its conflict
  /// probability for no extra overlap benefit.
  static constexpr size_t kBatchChunk = 16;
  /// Max operations planned into one write window.
  static constexpr size_t kBatchWindowOps = 16;
  /// Max distinct leaves one write window may lock ("up to K leaf updates
  /// per transaction").
  static constexpr size_t kHtmBatchLeaves = 4;
  /// Plan-transaction attempts before a window falls back to the single-op
  /// path (which retries unboundedly and can always make progress).
  static constexpr size_t kBatchTxRetries = 8;

  /// Batched point lookups. Correctness is carried entirely by the
  /// unchanged Find() that resolves each key (full lock-word + commit
  /// validation); the staging pass is advisory — one transaction descends
  /// for the whole chunk, and only if it commits are the staged leaves'
  /// header lines and candidate slots handed to a ReadBatch. Leaves live in
  /// pool memory that is never unmapped, so prefetching a leaf that a
  /// concurrent writer is touching is benign. values[i] is untouched when
  /// found[i] == 0.
  void MultiGet(const Key* keys, size_t n, Value* values, uint8_t* found) {
#if !defined(FPTREE_NO_PREFETCH)
    LeafNode* leaves[kBatchChunk];
    htm::Tx tx(&htm_);
#endif
    for (size_t base = 0; base < n; base += kBatchChunk) {
      size_t m = std::min(kBatchChunk, n - base);
#if !defined(FPTREE_NO_PREFETCH)
      tx.Begin();
      bool staged = true;
      for (size_t i = 0; i < m; ++i) {
        leaves[i] = FindLeafTx(&tx, keys[base + i], nullptr);
        if (!tx.ok() || leaves[i] == nullptr) {
          staged = false;
          break;
        }
      }
      if (staged) {
        staged = tx.Commit();
      } else if (tx.ok()) {
        tx.UserAbort();
      }
      if (staged) {
        scm::ReadBatch rb;
        for (size_t i = 0; i < m; ++i) {
          rb.Add(leaves[i],
                 sizeof(leaves[i]->fingerprints) + sizeof(leaves[i]->bitmap));
        }
        rb.Issue();
        for (size_t i = 0; i < m; ++i) {
          LeafNode* leaf = leaves[i];
          // Same race-free fingerprint snapshot as ScanLeaf: word-sized
          // atomic loads, unpublished slots discarded by the bitmap AND.
          uint64_t bmp = scm::pmem::Load(&leaf->bitmap);
          alignas(64) uint8_t fps[64] = {};
          const auto* words =
              reinterpret_cast<const uint64_t*>(leaf->fingerprints);
          for (size_t wd = 0; wd < (kLeafCap + 7) / 8; ++wd) {
            uint64_t word = __atomic_load_n(words + wd, __ATOMIC_RELAXED);
            std::memcpy(fps + wd * 8, &word, sizeof(word));
          }
          uint64_t cand =
              simd::MatchByte(fps, kLeafCap, Fingerprint(keys[base + i])) &
              bmp;
          while (cand != 0) {
            size_t s = static_cast<size_t>(__builtin_ctzll(cand));
            cand &= cand - 1;
            rb.Add(&leaf->kv[s], sizeof(KV));
          }
        }
        rb.Issue();
      }
#endif
      for (size_t i = 0; i < m; ++i) {
        found[base + i] = Find(keys[base + i], &values[base + i]) ? 1 : 0;
      }
    }
  }

  /// Batched Insert: windows of up to kBatchWindowOps ops are planned —
  /// and their leaves lock-acquired — inside ONE transaction, then executed
  /// outside it with group persistence (one batched fence for all staged
  /// ranges, one p-atomic bitmap publish per touched leaf). Each key
  /// remains individually atomic; semantics match a loop of Insert(),
  /// including duplicates within the batch. inserted may be nullptr.
  void MultiPut(const Key* keys, const Value* values, size_t n,
                uint8_t* inserted) {
    MultiWrite(keys, values, n, inserted, /*upsert=*/false);
  }

  /// Batched Upsert; duplicate keys within the batch behave last-wins,
  /// matching the loop oracle. inserted[i] = 1 iff newly inserted.
  void MultiUpsert(const Key* keys, const Value* values, size_t n,
                   uint8_t* inserted) {
    MultiWrite(keys, values, n, inserted, /*upsert=*/true);
  }

  size_t Size() const { return size_.load(std::memory_order_relaxed); }

  uint64_t DramBytes() const { return arena_.MemoryBytes(); }
  uint64_t ScmBytes() const { return pool_->allocator()->heap_used_bytes(); }
  uint64_t last_recovery_nanos() const { return recovery_nanos_; }
  htm::HtmStats& htm_stats() { return htm_.stats(); }
  const htm::HtmStats& htm_stats() const { return htm_.stats(); }

  /// Single-threaded consistency walk (tests; callers must quiesce).
  bool CheckConsistency(std::string* why) const {
    LeafNode* leaf = proot_->head.get();
    Key prev_max = 0;
    bool first = true;
    size_t total = 0;
    while (leaf != nullptr) {
      Key mn = ~Key{0}, mx = 0;
      size_t cnt = 0;
      for (size_t i = 0; i < kLeafCap; ++i) {
        if (!((leaf->bitmap >> i) & 1)) continue;
        ++cnt;
        mn = std::min(mn, leaf->kv[i].key);
        mx = std::max(mx, leaf->kv[i].key);
      }
      if (cnt > 0) {
        if (!first && mn <= prev_max) {
          *why = "leaf list out of order";
          return false;
        }
        prev_max = mx;
        first = false;
      }
      total += cnt;
      leaf = leaf->next.get();
    }
    if (total != Size()) {
      *why = "size mismatch: counted " + std::to_string(total) + " vs " +
             std::to_string(Size());
      return false;
    }
    return true;
  }

  /// Quiesced full invariant sweep (DESIGN.md §8): released lock words,
  /// fingerprint agreement on every live slot, leaf-list vs inner-index
  /// routing agreement, and the persistent-leak audit cross-checking every
  /// allocated block against the leaf list and the micro-log arrays.
  bool CheckInvariants(std::string* why) {
    if (!CheckConsistency(why)) return false;
    std::unordered_set<uint64_t> reachable;
    reachable.insert(pool_->root().offset);
    for (LeafNode* leaf = proot_->head.get(); leaf != nullptr;
         leaf = leaf->next.get()) {
      reachable.insert(pool_->ToPPtr(leaf).offset);
      if ((scm::pmem::Load(&leaf->lock_word) & 1) != 0) {
        *why = "quiesced leaf still holds its lock word";
        return false;
      }
      for (size_t i = 0; i < kLeafCap; ++i) {
        if (!((leaf->bitmap >> i) & 1)) continue;
        if (leaf->fingerprints[i] != Fingerprint(leaf->kv[i].key)) {
          *why = "fingerprint mismatch for key " +
                 std::to_string(leaf->kv[i].key);
          return false;
        }
        if (FindLeafRaw(leaf->kv[i].key) != leaf) {
          *why = "inner index routes key " +
                 std::to_string(leaf->kv[i].key) + " to the wrong leaf";
          return false;
        }
      }
    }
    for (size_t i = 0; i < kNumLogs; ++i) {
      const SplitLog& sl = proot_->split_logs[i];
      if (!sl.p_current.IsNull()) reachable.insert(sl.p_current.offset);
      if (!sl.p_new.IsNull()) reachable.insert(sl.p_new.offset);
      const DeleteLog& dl = proot_->delete_logs[i];
      if (!dl.p_current.IsNull()) reachable.insert(dl.p_current.offset);
      if (!dl.p_prev.IsNull()) reachable.insert(dl.p_prev.offset);
    }
    for (uint64_t off : pool_->allocator()->AllocatedPayloadOffsets()) {
      if (reachable.count(off) == 0) {
        *why = "leaked block at offset " + std::to_string(off);
        return false;
      }
    }
    return true;
  }

 private:
  /// Inner node, fully transactional: every field is an 8-byte tracked slot.
  struct Inner {
    uint64_t n_keys;
    uint64_t leaf_children;
    uint64_t keys[kInnerCap];
    uint64_t children[kInnerCap + 1];
  };

  struct PathRec {
    static constexpr size_t kMaxDepth = 32;
    Inner* nodes[kMaxDepth];
    uint32_t slots[kMaxDepth];
    uint32_t depth = 0;
  };

  // --- Transactional traversal ---------------------------------------------

  /// Descends to the leaf for `key` with every inner access tracked.
  /// Returns nullptr when the transaction is doomed.
  LeafNode* FindLeafTx(htm::Tx* tx, Key key, PathRec* path) {
    if (path != nullptr) path->depth = 0;
    Inner* node = reinterpret_cast<Inner*>(tx->Load(&root_));
    for (uint32_t depth = 0; depth < PathRec::kMaxDepth; ++depth) {
      if (!tx->ok() || node == nullptr) return nullptr;
      uint64_t n = tx->Load(&node->n_keys);
      if (n > kInnerCap) return nullptr;  // garbage read in a doomed tx
      // Branchless-ish lower_bound over tracked keys.
      uint64_t lo = 0, hi = n;
      while (lo < hi) {
        uint64_t mid = (lo + hi) / 2;
        if (tx->Load(&node->keys[mid]) < key) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (!tx->ok()) return nullptr;
      uint64_t child = tx->Load(&node->children[lo]);
      if (path != nullptr) {
        path->nodes[path->depth] = node;
        path->slots[path->depth] = static_cast<uint32_t>(lo);
        ++path->depth;
      }
      if (tx->Load(&node->leaf_children) != 0) {
        return reinterpret_cast<LeafNode*>(child);
      }
      node = reinterpret_cast<Inner*>(child);
    }
    return nullptr;  // depth guard (doomed-tx cycle protection)
  }

  /// Untracked descent for quiesced audits (no transaction, no stats).
  LeafNode* FindLeafRaw(Key key) {
    Inner* node = reinterpret_cast<Inner*>(root_);
    for (uint32_t depth = 0; depth < PathRec::kMaxDepth; ++depth) {
      if (node == nullptr) return nullptr;
      uint64_t n = node->n_keys;
      uint64_t lo = static_cast<uint64_t>(
          std::lower_bound(node->keys, node->keys + n, key) - node->keys);
      uint64_t child = node->children[lo];
      if (node->leaf_children != 0) {
        return reinterpret_cast<LeafNode*>(child);
      }
      node = reinterpret_cast<Inner*>(child);
    }
    return nullptr;
  }

  /// Right-most leaf of the subtree immediately left of the recorded path —
  /// the previous leaf in the linked list (tracked reads).
  LeafNode* FindPrevLeafTx(htm::Tx* tx, PathRec* path) {
    for (int level = static_cast<int>(path->depth) - 1; level >= 0; --level) {
      Inner* n = path->nodes[level];
      uint32_t slot = path->slots[level];
      if (slot == 0) continue;
      uint64_t sub = tx->Load(&n->children[slot - 1]);
      bool leaf_level = tx->Load(&n->leaf_children) != 0;
      for (uint32_t guard = 0; guard < PathRec::kMaxDepth; ++guard) {
        if (!tx->ok()) return nullptr;
        if (leaf_level) return reinterpret_cast<LeafNode*>(sub);
        Inner* in = reinterpret_cast<Inner*>(sub);
        uint64_t nk = tx->Load(&in->n_keys);
        if (nk > kInnerCap) return nullptr;
        sub = tx->Load(&in->children[nk]);
        leaf_level = tx->Load(&in->leaf_children) != 0;
      }
      return nullptr;
    }
    return nullptr;  // leaf is the global left-most: no previous leaf
  }

  /// Removes the leaf at `path` from the inner nodes (inside the caller's
  /// transaction). Empty ancestors are spliced out; detached nodes are
  /// abandoned to the arena (readers may still be traversing them).
  void RemoveLeafFromInnerTx(htm::Tx* tx, PathRec* path) {
    int level = static_cast<int>(path->depth) - 1;
    while (level >= 0) {
      Inner* n = path->nodes[level];
      uint32_t slot = path->slots[level];
      uint64_t nk = tx->Load(&n->n_keys);
      if (!tx->ok() || nk > kInnerCap) return;
      if (nk == 0) {
        // Node held only the removed child: splice the node itself.
        --level;
        if (level < 0) {
          // Root lost its last child. Unreachable in practice: the tree
          // never deletes its final leaf (Alg. 5's head-only guard).
          tx->Store(&n->n_keys, 0);
          return;
        }
        continue;
      }
      uint64_t key_slot = slot == nk ? slot - 1 : slot;
      for (uint64_t i = key_slot; i + 1 < nk; ++i) {
        tx->Store(&n->keys[i], tx->Load(&n->keys[i + 1]));
      }
      for (uint64_t i = slot; i < nk; ++i) {
        tx->Store(&n->children[i], tx->Load(&n->children[i + 1]));
      }
      tx->Store(&n->n_keys, nk - 1);
      return;
    }
  }

  // --- Leaf scanning (plain reads; protected by lock word + validation) ----

  static bool IsFull(const LeafNode* leaf) {
    return BitmapCount(leaf) == kLeafCap;
  }
  static size_t BitmapCount(const LeafNode* leaf) {
    return static_cast<size_t>(
        __builtin_popcountll(scm::pmem::Load(&leaf->bitmap)));
  }
  static int FindFirstZero(const LeafNode* leaf) {
    uint64_t inv = ~scm::pmem::Load(&leaf->bitmap);
    if constexpr (kLeafCap < 64) inv &= (uint64_t{1} << kLeafCap) - 1;
    return inv == 0 ? -1 : __builtin_ctzll(inv);
  }

  int ScanLeaf(LeafNode* leaf, Key key) {
    scm::ReadScm(leaf, sizeof(leaf->fingerprints) + sizeof(leaf->bitmap));
    uint64_t bmp = scm::pmem::Load(&leaf->bitmap);
    // Pairs with the release fence a writer's Persist() issues between its
    // KV stores and its bitmap publication: bits we see imply their KVs.
    std::atomic_thread_fence(std::memory_order_acquire);
    // Snapshot the fingerprint line with word-sized atomic loads so the
    // byte-parallel compare below stays race-free: slots not yet published
    // in bmp may be concurrently written, and the AND with bmp discards
    // them. The word loads never touch the bitmap — it starts at the first
    // 8-byte boundary after the fingerprint array.
    alignas(64) uint8_t fps[64] = {};
    const auto* words = reinterpret_cast<const uint64_t*>(leaf->fingerprints);
    for (size_t w = 0; w < (kLeafCap + 7) / 8; ++w) {
      uint64_t word = __atomic_load_n(words + w, __ATOMIC_RELAXED);
      std::memcpy(fps + w * 8, &word, sizeof(word));
    }
    uint64_t candidates =
        simd::MatchByte(fps, kLeafCap, Fingerprint(key)) & bmp;
    while (candidates != 0) {
      size_t i = static_cast<size_t>(__builtin_ctzll(candidates));
      candidates &= candidates - 1;
      scm::ReadScm(&leaf->kv[i], sizeof(KV));
      if (scm::pmem::Load(&leaf->kv[i].key) == key) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  // --- Batched write windows (batch pipeline, DESIGN.md §11) ---------------

  /// One planned batch operation. prev_slot >= 0: upsert-update aliasing
  /// that slot; -1: insert into a free slot; -2: insert over an existing
  /// key (no-op, validated by the plan transaction's commit).
  struct BatchOp {
    LeafNode* leaf;
    int prev_slot;
  };

  void MultiWrite(const Key* keys, const Value* values, size_t n,
                  uint8_t* inserted, bool upsert) {
    BatchOp ops[kBatchWindowOps];
    size_t i = 0;
    while (i < n) {
      size_t w =
          PlanWindow(keys + i, std::min(n - i, kBatchWindowOps), upsert, ops);
      if (w == 0) {
        // Abort-fallback: the single-op path handles splits and contended
        // leaves, and always makes progress.
        bool ok =
            upsert ? Upsert(keys[i], values[i]) : Insert(keys[i], values[i]);
        if (inserted != nullptr) inserted[i] = ok ? 1 : 0;
        ++i;
        continue;
      }
      ExecuteWindow(keys + i, values + i, w, ops,
                    inserted == nullptr ? nullptr : inserted + i);
      i += w;
    }
  }

  /// Plans one write window inside a single transaction: descends for up
  /// to max_ops consecutive ops, bounds the window to kHtmBatchLeaves
  /// distinct written leaves, and atomically lock-acquires every one of
  /// them — one commit validates the whole plan, where the looped path
  /// pays one transaction per op. The window truncates (without failing)
  /// at: a key already planned in this window (the next window re-reads
  /// the published state, so last-wins holds), a locked leaf, a leaf
  /// beyond the leaf budget, or a leaf without enough free slots for its
  /// staged ops. Returns the number of ops planned; 0 means the caller
  /// must run the FIRST op through the single-op path (split needed,
  /// contended leaf, or the plan transaction kept aborting).
  size_t PlanWindow(const Key* keys, size_t max_ops, bool upsert,
                    BatchOp* ops) {
    htm::Tx tx(&htm_);
    for (size_t attempt = 0; attempt < kBatchTxRetries; ++attempt) {
      SCM_CRASH_POINT("cfptree.retry");
      tx.Begin();
      LeafNode* wleaves[kHtmBatchLeaves];
      size_t wstaged[kHtmBatchLeaves];  // slots this window stages per leaf
      size_t wfree[kHtmBatchLeaves];    // free slots at plan time
      size_t nleaves = 0;
      size_t planned = 0;
      bool doomed = false;
      bool first_needs_single = false;
      while (planned < max_ops) {
        Key key = keys[planned];
        bool dup = false;
        for (size_t j = 0; j < planned; ++j) {
          if (keys[j] == key) {
            dup = true;
            break;
          }
        }
        if (dup) break;
        LeafNode* leaf = FindLeafTx(&tx, key, nullptr);
        if (!tx.ok() || leaf == nullptr) {
          doomed = true;
          break;
        }
        if ((tx.Load(&leaf->lock_word) & 1) != 0) {
          if (planned == 0) doomed = true;  // contended: retry the plan
          break;
        }
        std::atomic_thread_fence(std::memory_order_acquire);
        int prev = ScanLeaf(leaf, key);
        int prev_rec;
        bool stages = true;
        if (prev >= 0) {
          if (upsert) {
            prev_rec = prev;  // aliasing update (Alg. 8 tail)
          } else {
            prev_rec = -2;  // exists: no-op, no lock needed
            stages = false;
          }
        } else {
          prev_rec = -1;  // plain insert
        }
        if (stages) {
          size_t li = 0;
          while (li < nleaves && wleaves[li] != leaf) ++li;
          if (li == nleaves) {
            if (nleaves == kHtmBatchLeaves) break;  // leaf budget reached
            wleaves[nleaves] = leaf;
            wstaged[nleaves] = 0;
            wfree[nleaves] = kLeafCap - BitmapCount(leaf);
            ++nleaves;
          }
          // Updates free their previous slot only at publish time, so
          // every staged op consumes one currently-free slot. A leaf that
          // can't take the op must not stay in the window's lock set when
          // nothing stages into it — the executor only unlocks leaves that
          // staged ops, so locking it here would leak the lock.
          if (wstaged[li] + 1 > wfree[li]) {
            if (li == nleaves - 1 && wstaged[li] == 0) --nleaves;
            if (planned == 0) first_needs_single = true;  // split path
            break;
          }
          ++wstaged[li];
        }
        ops[planned] = BatchOp{leaf, prev_rec};
        ++planned;
      }
      if (doomed) {
        if (tx.ok()) tx.UserAbort();
        continue;
      }
      if (first_needs_single || planned == 0) {
        if (tx.ok()) tx.UserAbort();
        return 0;
      }
      for (size_t li = 0; li < nleaves; ++li) {
        tx.Store(&wleaves[li]->lock_word, NewOddGen());
      }
      if (tx.Commit()) return planned;
    }
    return 0;  // kept aborting: let the single-op path make progress
  }

  /// Executes a planned window outside any transaction: staged KV and
  /// fingerprint ranges across ALL window leaves share one batched fence,
  /// then each written leaf publishes with its single p-atomic bitmap
  /// store, then the locks drop. Each key is individually atomic (its
  /// leaf's bitmap flip); a crash makes exactly the already-published
  /// leaves' ops durable.
  void ExecuteWindow(const Key* keys, const Value* values, size_t w,
                     const BatchOp* ops, uint8_t* inserted) {
    LeafNode* wleaves[kHtmBatchLeaves];
    uint64_t set[kHtmBatchLeaves];
    uint64_t clear[kHtmBatchLeaves];
    size_t nleaves = 0;
    scm::pmem::PersistBatch pb;
    for (size_t i = 0; i < w; ++i) {
      LeafNode* leaf = ops[i].leaf;
      if (ops[i].prev_slot == -2) {  // insert over an existing key
        if (inserted != nullptr) inserted[i] = 0;
        continue;
      }
      size_t li = 0;
      while (li < nleaves && wleaves[li] != leaf) ++li;
      if (li == nleaves) {
        wleaves[nleaves] = leaf;
        set[nleaves] = 0;
        clear[nleaves] = 0;
        ++nleaves;
      }
      uint64_t used = scm::pmem::Load(&leaf->bitmap) | set[li];
      if constexpr (kLeafCap < 64) used |= ~((uint64_t{1} << kLeafCap) - 1);
      assert(used != ~uint64_t{0});  // planner budgeted the free slots
      int slot = __builtin_ctzll(~used);
      scm::pmem::Store(&leaf->kv[slot], KV{keys[i], values[i]});
      scm::pmem::Store(&leaf->fingerprints[slot], Fingerprint(keys[i]));
      pb.Add(&leaf->kv[slot]);
      pb.Add(&leaf->fingerprints[slot], 1);
      set[li] |= uint64_t{1} << slot;
      if (ops[i].prev_slot >= 0) {
        clear[li] |= uint64_t{1} << ops[i].prev_slot;
        if (inserted != nullptr) inserted[i] = 0;
      } else {
        size_.fetch_add(1, std::memory_order_relaxed);
        if (inserted != nullptr) inserted[i] = 1;
      }
    }
    pb.Commit();
    SCM_CRASH_POINT("cfptree.multiput.before_bitmap");
    for (size_t li = 0; li < nleaves; ++li) {
      uint64_t bmp = scm::pmem::Load(&wleaves[li]->bitmap);
      scm::pmem::StorePersist(&wleaves[li]->bitmap,
                              (bmp & ~clear[li]) | set[li]);
    }
    SCM_CRASH_POINT("cfptree.multiput.after_bitmap");
    for (size_t li = 0; li < nleaves; ++li) UnlockLeaf(wleaves[li]);
  }

  /// Per-leaf retry budget for RangeScan before the scan abandons the leaf
  /// and re-descends from the root (a deleted leaf's lock word is never
  /// released, so an unbounded spin would livelock every scanner).
  static constexpr uint32_t kScanLockRounds = 64;

  /// Transactional descent used by RangeScan on entry and whenever a leaf
  /// snapshot fails its validation budget.
  LeafNode* DescendForScan(htm::Tx* tx, Key key) {
    for (;;) {
      SCM_CRASH_POINT("cfptree.retry");
      tx->Begin();
      LeafNode* leaf = FindLeafTx(tx, key, nullptr);
      if (!tx->ok() || leaf == nullptr) continue;
      if (tx->Commit()) return leaf;
    }
  }

  /// One validated RangeScan leaf snapshot: pairs with key >= `ge` land in
  /// `out`, and the next-leaf offset is captured inside the same validated
  /// window (an offset loaded after validation could belong to a recycled
  /// leaf). Validation is a generation witness: the lock word is read once
  /// before and once after the slot reads, and the snapshot is good only
  /// if both reads saw the same even (released) value — every release
  /// stores a globally unique generation, so equality proves no writer
  /// locked the leaf in between (no bitmap ABA, no recycle ABA). The
  /// witnessed generation is returned through `gen_out` so the caller can
  /// later RevalidateLeaf() this snapshot. Returns false when the leaf
  /// stayed locked for the whole bounded-backoff budget; the caller
  /// re-descends from the root.
  bool SnapshotLeaf(LeafNode* leaf, Key ge,
                    std::vector<std::pair<Key, Value>>* out,
                    uint64_t* next_off, uint64_t* gen_out) {
    for (uint32_t round = 0; round < kScanLockRounds; ++round) {
      SCM_CRASH_POINT("cfptree.retry");
      uint64_t w1 = __atomic_load_n(&leaf->lock_word, __ATOMIC_ACQUIRE);
      if ((w1 & 1) != 0) {
        BackoffSpin(round);
        continue;
      }
      uint64_t bmp = scm::pmem::Load(&leaf->bitmap);
      std::atomic_thread_fence(std::memory_order_acquire);
      out->clear();
      for (size_t i = 0; i < kLeafCap; ++i) {
        if (!((bmp >> i) & 1)) continue;
        scm::ReadScm(&leaf->kv[i], sizeof(KV));
        Key k = scm::pmem::Load(&leaf->kv[i].key);
        if (k >= ge) out->emplace_back(k, leaf->kv[i].value);
      }
      uint64_t next = scm::pmem::Load(&leaf->next.offset);
      // Validate: same generation on both sides of the reads, next inside
      // the pool.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (scm::pmem::Load(&leaf->lock_word) == w1 && next < pool_->size()) {
        *next_off = next;
        *gen_out = w1;
        return true;
      }
    }
    return false;
  }

  /// Re-checks an earlier SnapshotLeaf(): the leaf still carries the
  /// witnessed generation, i.e. no writer locked it since. Called AFTER
  /// snapshotting the successor: deleting (and recycling) the successor
  /// requires the deleter to lock this leaf and rewrite its next field,
  /// which bumps the generation — so passing here means the successor
  /// snapshot read the live chain.
  bool RevalidateLeaf(LeafNode* leaf, uint64_t gen) {
    std::atomic_thread_fence(std::memory_order_acquire);
    return scm::pmem::Load(&leaf->lock_word) == gen;
  }

  /// Scan entry (and recovery after any failed hop): descend to the leaf
  /// covering `cursor`, snapshot it, then confirm with a second descent
  /// that the inner index still maps `cursor` to the same leaf — without
  /// the confirmation the leaf could have been deleted and recycled into a
  /// different key range between the descent's commit and our snapshot,
  /// and the scan would emit that range and skip everything in between.
  LeafNode* EnterScan(htm::Tx* tx, Key cursor,
                      std::vector<std::pair<Key, Value>>* out,
                      uint64_t* next_off, uint64_t* gen_out) {
    for (;;) {
      LeafNode* leaf = DescendForScan(tx, cursor);
      if (!SnapshotLeaf(leaf, cursor, out, next_off, gen_out)) continue;
      if (DescendForScan(tx, cursor) == leaf) return leaf;
    }
  }

  // --- Persistent mutations (outside transactions, leaf locked) ------------

  /// Lock-word generations: acquisitions store a fresh odd value, releases
  /// a fresh even value, so every value a leaf's lock word ever holds is
  /// globally unique. Scans use an unchanged word as proof the leaf was
  /// untouched across their read window (see SnapshotLeaf). The word is
  /// transient — recovery resets it to 0 (even, i.e. released).
  uint64_t NewOddGen() {
    return lock_gen_.fetch_add(2, std::memory_order_relaxed) | 1;
  }
  uint64_t NewEvenGen() {
    return lock_gen_.fetch_add(2, std::memory_order_relaxed);
  }

  void UnlockLeaf(LeafNode* leaf) {
    __atomic_store_n(&leaf->lock_word, NewEvenGen(), __ATOMIC_RELEASE);
  }

  static Status NoSpace() {
    return Status::ResourceExhausted(
        "fptree-c: pool out of space (split allocation failed)");
  }

  void InsertKV(LeafNode* leaf, Key key, const Value& value) {
    int slot = FindFirstZero(leaf);
    assert(slot >= 0);
    scm::pmem::Store(&leaf->kv[slot], KV{key, value});
    scm::pmem::Store(&leaf->fingerprints[slot], Fingerprint(key));
    scm::pmem::Persist(&leaf->kv[slot]);
    scm::pmem::Persist(&leaf->fingerprints[slot], 1);
    SCM_CRASH_POINT("cfptree.insert.before_bitmap");
    scm::pmem::StorePersist(&leaf->bitmap,
                            leaf->bitmap | (uint64_t{1} << slot));
  }

  /// Paper Alg. 3: micro-log claimed from the lock-free mask. Returns
  /// nullptr when the new leaf cannot be allocated; the claimed log is
  /// reset and released so recovery sees no in-flight split.
  LeafNode* SplitLeaf(LeafNode* leaf, Key* split_key) {
    int idx = split_claims_.Acquire();
    SplitLog* log = &proot_->split_logs[idx];
    scm::pmem::StorePPtrPersist(&log->p_current, pool_->ToPPtr(leaf));
    SCM_CRASH_POINT("cfptree.split.logged");
    Status s = pool_->allocator()->Allocate(&log->p_new, sizeof(LeafNode));
    if (!s.ok()) {
      ResetSplitLog(log);
      split_claims_.Release(idx);
      return nullptr;
    }
    SCM_CRASH_POINT("cfptree.split.allocated");
    LeafNode* new_leaf = log->p_new.get();
    *split_key = FinishSplitFromCopy(log);
    split_claims_.Release(idx);
    return new_leaf;
  }

  Key FinishSplitFromCopy(SplitLog* log) {
    LeafNode* leaf = log->p_current.get();
    LeafNode* new_leaf = log->p_new.get();
    scm::pmem::StoreBytes(new_leaf, leaf, sizeof(LeafNode));
    // The copy duplicated the (odd, locked) lock word; re-stamp it with a
    // fresh odd generation so this incarnation of the node is unique —
    // a scanner holding a witness from a prior leaf at this address must
    // not be able to validate against the copied value.
    __atomic_store_n(&new_leaf->lock_word, NewOddGen(), __ATOMIC_RELEASE);
    scm::pmem::Persist(new_leaf, sizeof(LeafNode));
    SCM_CRASH_POINT("cfptree.split.copied");
    Key sk = ComputeSplitKey(leaf);
    uint64_t upper = 0;
    for (size_t i = 0; i < kLeafCap; ++i) {
      if (((leaf->bitmap >> i) & 1) && leaf->kv[i].key > sk) {
        upper |= uint64_t{1} << i;
      }
    }
    scm::pmem::StorePersist(&new_leaf->bitmap, upper);
    SCM_CRASH_POINT("cfptree.split.new_bitmap");
    scm::pmem::StorePersist(&leaf->bitmap, leaf->bitmap & ~upper);
    SCM_CRASH_POINT("cfptree.split.old_bitmap");
    scm::pmem::StorePPtrPersist(&leaf->next, log->p_new);
    SCM_CRASH_POINT("cfptree.split.linked");
    ResetSplitLog(log);
    return sk;
  }

  void FinishSplitFromInverse(SplitLog* log) {
    LeafNode* leaf = log->p_current.get();
    LeafNode* new_leaf = log->p_new.get();
    uint64_t mask =
        kLeafCap == 64 ? ~uint64_t{0} : ((uint64_t{1} << kLeafCap) - 1);
    scm::pmem::StorePersist(&leaf->bitmap, ~new_leaf->bitmap & mask);
    scm::pmem::StorePPtrPersist(&leaf->next, log->p_new);
    ResetSplitLog(log);
  }

  void ResetSplitLog(SplitLog* log) {
    scm::pmem::StorePPtr(&log->p_current, scm::PPtr<LeafNode>::Null());
    scm::pmem::StorePPtr(&log->p_new, scm::PPtr<LeafNode>::Null());
    scm::pmem::Persist(log, sizeof(*log));
  }

  Key ComputeSplitKey(LeafNode* leaf) const {
    Key keys[kLeafCap];
    size_t n = 0;
    for (size_t i = 0; i < kLeafCap; ++i) {
      if ((leaf->bitmap >> i) & 1) keys[n++] = leaf->kv[i].key;
    }
    size_t h = n / 2;
    std::nth_element(keys, keys + (h - 1), keys + n);
    return keys[h - 1];
  }

  /// Paper Alg. 6 (without leaf groups): unlink + deallocate, micro-logged.
  void DeleteLeaf(LeafNode* leaf, LeafNode* prev) {
    int idx = delete_claims_.Acquire();
    DeleteLog* log = &proot_->delete_logs[idx];
    scm::pmem::StorePPtrPersist(&log->p_current, pool_->ToPPtr(leaf));
    SCM_CRASH_POINT("cfptree.delete.logged");
    if (proot_->head.get() == leaf) {
      scm::pmem::StorePPtrPersist(&proot_->head, leaf->next);
    } else {
      assert(prev != nullptr);
      scm::pmem::StorePPtrPersist(&log->p_prev, pool_->ToPPtr(prev));
      SCM_CRASH_POINT("cfptree.delete.prev_logged");
      scm::pmem::StorePPtrPersist(&prev->next, leaf->next);
      SCM_CRASH_POINT("cfptree.delete.unlinked");
    }
    scm::pmem::StorePersist(&leaf->bitmap, uint64_t{0});
    pool_->allocator()->Deallocate(&log->p_current);
    scm::pmem::StorePPtr(&log->p_prev, scm::PPtr<LeafNode>::Null());
    scm::pmem::Persist(log, sizeof(*log));
    delete_claims_.Release(idx);
  }

  // --- Inner-node updates after a split (second transaction, Alg. 2) -------

  void UpdateParents(Key split_key, LeafNode* new_leaf) {
    htm::Tx tx(&htm_);
    for (;;) {
      SCM_CRASH_POINT("cfptree.retry");
      tx.Begin();
      PathRec path;
      LeafNode* routed = FindLeafTx(&tx, split_key, &path);
      if (!tx.ok() || routed == nullptr) continue;
      InsertSplitTx(&tx, &path, split_key,
                    reinterpret_cast<uint64_t>(new_leaf));
      if (!tx.ok()) continue;
      if (tx.Commit()) return;
    }
  }

  void InsertSplitTx(htm::Tx* tx, PathRec* path, Key key, uint64_t right) {
    for (int level = static_cast<int>(path->depth) - 1; level >= 0; --level) {
      Inner* n = path->nodes[level];
      uint32_t slot = path->slots[level];
      uint64_t nk = tx->Load(&n->n_keys);
      if (!tx->ok() || nk > kInnerCap) return;
      if (nk < kInnerCap) {
        for (uint64_t i = nk; i > slot; --i) {
          tx->Store(&n->keys[i], tx->Load(&n->keys[i - 1]));
        }
        for (uint64_t i = nk + 1; i > slot + 1; --i) {
          tx->Store(&n->children[i], tx->Load(&n->children[i - 1]));
        }
        tx->Store(&n->keys[slot], key);
        tx->Store(&n->children[slot + 1], right);
        tx->Store(&n->n_keys, nk + 1);
        return;
      }
      // Inner split: allocate from the arena (a side effect that survives
      // an abort as bounded garbage), move the upper half, push up.
      Inner* sibling = NewInner(tx->Load(&n->leaf_children) != 0);
      uint64_t mid = nk / 2;
      uint64_t up_key = tx->Load(&n->keys[mid]);
      uint64_t snk = nk - mid - 1;
      for (uint64_t i = 0; i < snk; ++i) {
        sibling->keys[i] = tx->Load(&n->keys[mid + 1 + i]);
        sibling->children[i] = tx->Load(&n->children[mid + 1 + i]);
      }
      sibling->children[snk] = tx->Load(&n->children[nk]);
      sibling->n_keys = snk;
      if (!tx->ok()) return;
      tx->Store(&n->n_keys, mid);
      if (slot <= mid) {
        InsertIntoInnerTx(tx, n, slot, key, right);
      } else {
        InsertIntoInnerTxRaw(sibling, slot - mid - 1, key, right);
      }
      key = up_key;
      right = reinterpret_cast<uint64_t>(sibling);
    }
    // Root split.
    Inner* new_root = NewInner(false);
    new_root->n_keys = 1;
    new_root->keys[0] = key;
    new_root->children[0] = tx->Load(&root_);
    new_root->children[1] = right;
    if (!tx->ok()) return;
    tx->Store(&root_, reinterpret_cast<uint64_t>(new_root));
  }

  void InsertIntoInnerTx(htm::Tx* tx, Inner* n, uint32_t slot, uint64_t key,
                         uint64_t right) {
    uint64_t nk = tx->Load(&n->n_keys);
    for (uint64_t i = nk; i > slot; --i) {
      tx->Store(&n->keys[i], tx->Load(&n->keys[i - 1]));
    }
    for (uint64_t i = nk + 1; i > slot + 1; --i) {
      tx->Store(&n->children[i], tx->Load(&n->children[i - 1]));
    }
    tx->Store(&n->keys[slot], key);
    tx->Store(&n->children[slot + 1], right);
    tx->Store(&n->n_keys, nk + 1);
  }

  /// Plain (non-transactional) insert into a node invisible to other
  /// threads (a freshly allocated sibling).
  static void InsertIntoInnerTxRaw(Inner* n, uint32_t slot, uint64_t key,
                                   uint64_t right) {
    uint64_t nk = n->n_keys;
    for (uint64_t i = nk; i > slot; --i) n->keys[i] = n->keys[i - 1];
    for (uint64_t i = nk + 1; i > slot + 1; --i) {
      n->children[i] = n->children[i - 1];
    }
    n->keys[slot] = key;
    n->children[slot + 1] = right;
    n->n_keys = nk + 1;
  }

  Inner* NewInner(bool leaf_children) {
    Inner* n = static_cast<Inner*>(arena_.Allocate());
    n->n_keys = 0;
    n->leaf_children = leaf_children ? 1 : 0;
    return n;
  }

  // --- Initialization & recovery -------------------------------------------

  void AttachOrInit() {
    uint64_t t0 = NowNanos();
    if (pool_->root().IsNull()) {
      Status s =
          pool_->allocator()->Allocate(&pool_->header()->root, sizeof(PRoot));
      assert(s.ok());
      (void)s;
    }
    proot_ = static_cast<PRoot*>(pool_->root().get());
    if (proot_->magic != PRoot::kMagic) {
      PRoot zero{};
      zero.magic = PRoot::kMagic;
      scm::pmem::StoreBytes(proot_, &zero, sizeof(zero));
      scm::pmem::Persist(proot_, sizeof(*proot_));
    }
    for (size_t i = 0; i < kNumLogs; ++i) {
      RecoverSplit(&proot_->split_logs[i]);
      RecoverDelete(&proot_->delete_logs[i]);
    }
    if (proot_->head.IsNull()) {
      Status s =
          pool_->allocator()->Allocate(&proot_->head, sizeof(LeafNode));
      assert(s.ok());
      (void)s;
      LeafNode* first = proot_->head.get();
      scm::pmem::StorePersist(&first->bitmap, uint64_t{0});
      scm::pmem::StorePPtrPersist(&first->next, scm::PPtr<LeafNode>::Null());
      scm::pmem::StoreVolatile(&first->lock_word, uint64_t{0});
    }
    RebuildInner();
    if (!pool_->root_initialized()) pool_->SetRootInitialized();
    recovery_nanos_ = NowNanos() - t0;
    RecordRecovery(recovery_nanos_, RecoverThreads());
  }

  void RecoverSplit(SplitLog* log) {
    if (log->p_current.IsNull() || log->p_new.IsNull()) {
      ResetSplitLog(log);
      return;
    }
    if (static_cast<size_t>(__builtin_popcountll(
            log->p_current.get()->bitmap)) == kLeafCap) {
      FinishSplitFromCopy(log);
    } else {
      FinishSplitFromInverse(log);
    }
  }

  void RecoverDelete(DeleteLog* log) {
    if (log->p_current.IsNull()) {
      scm::pmem::StorePPtr(&log->p_prev, scm::PPtr<LeafNode>::Null());
      scm::pmem::Persist(log, sizeof(*log));
      return;
    }
    LeafNode* leaf = log->p_current.get();
    LeafNode* head = proot_->head.get();
    if (!log->p_prev.IsNull()) {
      scm::pmem::StorePPtrPersist(&log->p_prev.get()->next, leaf->next);
      FinishDeleteRecovery(log);
    } else if (leaf == head) {
      scm::pmem::StorePPtrPersist(&proot_->head, leaf->next);
      FinishDeleteRecovery(log);
    } else if (leaf->next.get() == head) {
      FinishDeleteRecovery(log);
    } else {
      scm::pmem::StorePPtr(&log->p_current, scm::PPtr<LeafNode>::Null());
      scm::pmem::StorePPtr(&log->p_prev, scm::PPtr<LeafNode>::Null());
      scm::pmem::Persist(log, sizeof(*log));
    }
  }

  void FinishDeleteRecovery(DeleteLog* log) {
    scm::pmem::StorePersist(&log->p_current.get()->bitmap, uint64_t{0});
    pool_->allocator()->Deallocate(&log->p_current);
    scm::pmem::StorePPtr(&log->p_prev, scm::PPtr<LeafNode>::Null());
    scm::pmem::Persist(log, sizeof(*log));
  }

  /// Bulk rebuild of the DRAM inner nodes (paper Alg. 9): walk the leaf
  /// list, reset lock words, collect max keys, build bottom-up.
  ///
  /// The list walk is a serial pointer chase, but the per-leaf scans
  /// (lock-word resets, max-key reductions) are embarrassingly parallel
  /// and sharded across RecoverThreads() workers over the collected leaf
  /// array. Shards append to private vectors merged in shard order, so
  /// `live` keeps the leaf-list order — which is key order, because splits
  /// insert siblings in place — and no sort is needed, exactly as before.
  /// Recovery is single-client (no concurrent tree ops), so plain leaf
  /// reads race with nothing.
  void RebuildInner() {
    std::vector<LeafNode*> leaves;
    LeafNode* head = proot_->head.get();
    for (LeafNode* leaf = head; leaf != nullptr; leaf = leaf->next.get()) {
      leaves.push_back(leaf);
    }
    struct Shard {
      std::vector<std::pair<Key, LeafNode*>> live;
      size_t count = 0;
    };
    const uint32_t threads = RecoverThreads();
    std::vector<Shard> shards(
        std::max<size_t>(size_t{1}, std::min<size_t>(threads,
                                                     leaves.size())));
    ParallelShards(leaves.size(), threads,
                   [&](size_t shard, size_t begin, size_t end) {
      Shard& out = shards[shard];
      for (size_t li = begin; li < end; ++li) {
        LeafNode* leaf = leaves[li];
        scm::pmem::StoreVolatile(&leaf->lock_word, uint64_t{0});
        // Seed the max from the first live slot — Key{0} is not a safe
        // identity for arbitrary key types. Live slots iterate via ctz.
        Key mx{};
        size_t cnt = 0;
        uint64_t valid = leaf->bitmap;
        while (valid != 0) {
          size_t i = static_cast<size_t>(__builtin_ctzll(valid));
          valid &= valid - 1;
          mx = cnt == 0 ? leaf->kv[i].key : std::max(mx, leaf->kv[i].key);
          ++cnt;
        }
        out.count += cnt;
        if (cnt > 0 || leaf == head) out.live.emplace_back(mx, leaf);
      }
    });
    std::vector<std::pair<Key, LeafNode*>> live;
    size_t count = 0;
    for (Shard& out : shards) {
      live.insert(live.end(), out.live.begin(), out.live.end());
      count += out.count;
    }
    size_.store(count, std::memory_order_relaxed);

    // Build bottom-up: level 0 groups leaves under leaf-parent inners.
    std::vector<std::pair<Key, Inner*>> level;
    {
      size_t i = 0;
      const size_t n = live.size();
      while (i < n) {
        Inner* node = NewInner(true);
        size_t take = std::min(n - i, kInnerCap + 1);
        for (size_t j = 0; j < take; ++j) {
          node->children[j] = reinterpret_cast<uint64_t>(live[i + j].second);
          if (j + 1 < take) node->keys[j] = live[i + j].first;
        }
        node->n_keys = take - 1;
        level.emplace_back(live[i + take - 1].first, node);
        i += take;
      }
    }
    while (level.size() > 1) {
      std::vector<std::pair<Key, Inner*>> next;
      size_t i = 0;
      const size_t n = level.size();
      while (i < n) {
        Inner* node = NewInner(false);
        size_t take = std::min(n - i, kInnerCap + 1);
        for (size_t j = 0; j < take; ++j) {
          node->children[j] = reinterpret_cast<uint64_t>(level[i + j].second);
          if (j + 1 < take) node->keys[j] = level[i + j].first;
        }
        node->n_keys = take - 1;
        next.emplace_back(level[i + take - 1].first, node);
        i += take;
      }
      level.swap(next);
    }
    root_ = reinterpret_cast<uint64_t>(level[0].second);
  }

  scm::Pool* pool_;
  htm::HtmEngine htm_;
  NodeArena arena_;
  PRoot* proot_ = nullptr;
  uint64_t root_ = 0;  ///< tracked slot holding the Inner* root
  LogClaimMask split_claims_;
  LogClaimMask delete_claims_;
  std::atomic<size_t> size_{0};
  /// Lock-word generation counter (see NewOddGen). Starts at 2 so the
  /// recovery-reset value 0 is never re-issued.
  std::atomic<uint64_t> lock_gen_{2};
  uint64_t recovery_nanos_ = 0;
};

}  // namespace core
}  // namespace fptree
