// Copyright (c) FPTree reproduction authors.
//
// The single-threaded Fingerprinting Persistent Tree (paper §4–§5 and
// Appendix B): selective persistence (leaves in SCM, inner nodes in DRAM),
// fingerprints, unsorted leaves with in-leaf bitmaps, amortized persistent
// allocations through leaf groups, micro-logged splits/deletes, and
// any-point crash recovery.
//
// Keys are fixed-size 8-byte integers; the value type is a template
// parameter (the paper's payload-size study, Appendix A, varies it from 8 to
// 112 bytes). The variable-size-key variant lives in fptree_var.h; the
// concurrent variant in fptree_concurrent.h.

#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "core/inner_index.h"
#include "core/recovery.h"
#include "core/tree_stats.h"
#include "scm/alloc.h"
#include "scm/crash.h"
#include "scm/pmem.h"
#include "scm/pool.h"
#include "util/hash.h"
#include "util/simd.h"
#include "util/threading.h"
#include "util/timer.h"

namespace fptree {
namespace core {

/// Default node sizes from the paper's tuning study (Table 1): FPTree inner
/// 4096, leaf 56.
constexpr size_t kDefaultLeafCap = 56;
constexpr size_t kDefaultInnerCap = 4096;
constexpr size_t kDefaultGroupSize = 16;

/// \brief Single-threaded FPTree.
///
/// \tparam Value      trivially copyable payload
/// \tparam kLeafCap   entries per leaf (<= 64: the bitmap is one p-atomic
///                    8-byte word, the cornerstone of §5's consistency)
/// \tparam kInnerCap  keys per DRAM inner node
/// \tparam kUseGroups amortized allocations via leaf groups (paper
///                    Appendix B); the ablation benchmark turns this off
/// \tparam kGroupSize leaves per group
template <typename Value = uint64_t, size_t kLeafCap = kDefaultLeafCap,
          size_t kInnerCap = kDefaultInnerCap, bool kUseGroups = true,
          size_t kGroupSize = kDefaultGroupSize>
class FPTree {
  static_assert(kLeafCap >= 2 && kLeafCap <= 64,
                "leaf bitmap must fit one p-atomic word");
  static_assert(std::is_trivially_copyable_v<Value>);

 public:
  using Key = uint64_t;

  struct KV {
    Key key;
    Value value;
  };

  /// Leaf node layout (paper Fig. 2b): fingerprints first — packed at the
  /// head of the leaf so the filter costs a single SCM line — then the
  /// validity bitmap, the persistent next pointer, the lock word (used by
  /// the concurrent variant; never persisted), then unsorted KV pairs.
  struct alignas(64) LeafNode {
    uint8_t fingerprints[kLeafCap];
    uint64_t bitmap;
    scm::PPtr<LeafNode> next;
    uint64_t lock_word;
    KV kv[kLeafCap];

    bool IsFull() const { return BitmapCount() == kLeafCap; }
    size_t BitmapCount() const {
      return static_cast<size_t>(__builtin_popcountll(bitmap));
    }
    bool TestBit(size_t i) const { return (bitmap >> i) & 1; }
    int FindFirstZero() const {
      uint64_t inv = ~bitmap;
      if constexpr (kLeafCap < 64) inv &= (uint64_t{1} << kLeafCap) - 1;
      return inv == 0 ? -1 : __builtin_ctzll(inv);
    }
  };

  struct alignas(64) LeafGroup {
    scm::PPtr<LeafGroup> next;
    uint64_t reserved[6];
    LeafNode leaves[kGroupSize];
  };

  /// Split micro-log (paper Alg. 3/4).
  struct alignas(64) SplitLog {
    scm::PPtr<LeafNode> p_current;
    scm::PPtr<LeafNode> p_new;
  };

  /// Delete micro-log (paper Alg. 6/7).
  struct alignas(64) DeleteLog {
    scm::PPtr<LeafNode> p_current;
    scm::PPtr<LeafNode> p_prev;
  };

  /// GetLeaf micro-log (paper Alg. 10/11).
  struct alignas(64) GetLeafLog {
    scm::PPtr<LeafGroup> p_new_group;
  };

  /// FreeLeaf micro-log (paper Alg. 12/13).
  struct alignas(64) FreeLeafLog {
    scm::PPtr<LeafGroup> p_current_group;
    scm::PPtr<LeafGroup> p_prev_group;
  };

  /// The tree's persistent anchor, pointed to by the pool root slot.
  struct alignas(64) PRoot {
    static constexpr uint64_t kMagic = 0xF97EE000000001ULL;

    uint64_t magic;
    scm::PPtr<LeafNode> head;  ///< head of the persistent leaf linked list
    scm::PPtr<LeafGroup> groups_head;
    scm::PPtr<LeafGroup> groups_tail;
    SplitLog split_log;
    DeleteLog delete_log;
    GetLeafLog get_leaf_log;
    FreeLeafLog free_leaf_log;
  };

  /// Attaches to `pool`: initializes a fresh tree, or recovers an existing
  /// one (micro-log replay + inner-node rebuild, paper Alg. 9).
  explicit FPTree(scm::Pool* pool) : pool_(pool) { AttachOrInit(); }

  FPTree(const FPTree&) = delete;
  FPTree& operator=(const FPTree&) = delete;

  // --- Base operations (paper §5) ----------------------------------------

  /// Point lookup. Returns true and fills *value if the key exists.
  bool Find(Key key, Value* value) {
    ++stats_.finds;
    Path path;
    LeafNode* leaf = FindLeaf(key, &path);
    int slot = FindInLeaf(leaf, key);
    if (slot < 0) return false;
    *value = leaf->kv[slot].value;
    return true;
  }

  /// Inserts a new key. Returns false (no modification) if it exists
  /// (the paper assumes unique keys, §4.2) — or when the pool is out of
  /// space; use InsertChecked to distinguish.
  bool Insert(Key key, const Value& value) {
    bool inserted = false;
    return InsertChecked(key, value, &inserted).ok() && inserted;
  }

  /// Status-propagating insert (DESIGN.md §12): OK with *inserted=false
  /// when the key exists, ResourceExhausted when a required split cannot
  /// allocate — in which case the tree is untouched (no slot published, no
  /// split-log residue, nothing leaked) and the op can be retried after
  /// space is freed.
  Status InsertChecked(Key key, const Value& value, bool* inserted) {
    *inserted = false;
    Path path;
    LeafNode* leaf = FindLeaf(key, &path);
    if (FindInLeaf(leaf, key) >= 0) return Status::OK();

    LeafNode* target = leaf;
    if (leaf->IsFull()) {
      Key split_key;
      LeafNode* new_leaf = SplitLeaf(leaf, &split_key);
      if (new_leaf == nullptr) return NoSpace();
      if (key > split_key) target = new_leaf;
      InsertKV(target, key, value);
      inner_.InsertSplit(path, split_key, new_leaf);
    } else {
      InsertKV(target, key, value);
    }
    ++size_;
    *inserted = true;
    return Status::OK();
  }

  /// Updates the value of an existing key (paper Alg. 8: the insert and the
  /// delete become visible through one p-atomic bitmap store). Returns
  /// false if the key does not exist.
  bool Update(Key key, const Value& value) {
    bool updated = false;
    return UpdateChecked(key, value, &updated).ok() && updated;
  }

  /// Status-propagating update; OK with *updated=false when the key does
  /// not exist, ResourceExhausted when the out-of-place write needs a
  /// split that cannot allocate (old value stays intact).
  Status UpdateChecked(Key key, const Value& value, bool* updated) {
    *updated = false;
    Path path;
    LeafNode* leaf = FindLeaf(key, &path);
    int prev_slot = FindInLeaf(leaf, key);
    if (prev_slot < 0) return Status::OK();

    if (leaf->IsFull()) {
      Key split_key;
      LeafNode* new_leaf = SplitLeaf(leaf, &split_key);
      if (new_leaf == nullptr) return NoSpace();
      inner_.InsertSplit(path, split_key, new_leaf);
      if (key > split_key) leaf = new_leaf;
      prev_slot = FindInLeaf(leaf, key);
      assert(prev_slot >= 0);
    }
    int slot = leaf->FindFirstZero();
    assert(slot >= 0);
    scm::pmem::Store(&leaf->kv[slot], KV{key, value});
    scm::pmem::Store(&leaf->fingerprints[slot], Fingerprint(key));
    scm::pmem::Persist(&leaf->kv[slot]);
    scm::pmem::Persist(&leaf->fingerprints[slot], 1);
    SCM_CRASH_POINT("fptree.update.before_bitmap");
    uint64_t bmp = leaf->bitmap;
    bmp &= ~(uint64_t{1} << prev_slot);
    bmp |= uint64_t{1} << slot;
    scm::pmem::StorePersist(&leaf->bitmap, bmp);
    SCM_CRASH_POINT("fptree.update.after_bitmap");
    *updated = true;
    return Status::OK();
  }

  /// Insert-or-update in one descent (index API v3): merges the Insert and
  /// Update tails behind a single FindLeaf/FindInLeaf probe. Returns true
  /// when the key was newly inserted, false when replaced. Crash
  /// consistency is inherited: each tail publishes through the same single
  /// p-atomic bitmap store as the stand-alone operation.
  bool Upsert(Key key, const Value& value) {
    bool inserted = false;
    UpsertChecked(key, value, &inserted);
    return inserted;
  }

  /// Status-propagating upsert; ResourceExhausted means the op was not
  /// applied at all (the previous mapping, if any, is intact).
  Status UpsertChecked(Key key, const Value& value, bool* inserted) {
    *inserted = false;
    Path path;
    LeafNode* leaf = FindLeaf(key, &path);
    int prev_slot = FindInLeaf(leaf, key);

    if (prev_slot < 0) {  // Insert tail
      LeafNode* target = leaf;
      if (leaf->IsFull()) {
        Key split_key;
        LeafNode* new_leaf = SplitLeaf(leaf, &split_key);
        if (new_leaf == nullptr) return NoSpace();
        if (key > split_key) target = new_leaf;
        InsertKV(target, key, value);
        inner_.InsertSplit(path, split_key, new_leaf);
      } else {
        InsertKV(target, key, value);
      }
      ++size_;
      *inserted = true;
      return Status::OK();
    }

    // Update tail (paper Alg. 8).
    if (leaf->IsFull()) {
      Key split_key;
      LeafNode* new_leaf = SplitLeaf(leaf, &split_key);
      if (new_leaf == nullptr) return NoSpace();
      inner_.InsertSplit(path, split_key, new_leaf);
      if (key > split_key) leaf = new_leaf;
      prev_slot = FindInLeaf(leaf, key);
      assert(prev_slot >= 0);
    }
    int slot = leaf->FindFirstZero();
    assert(slot >= 0);
    scm::pmem::Store(&leaf->kv[slot], KV{key, value});
    scm::pmem::Store(&leaf->fingerprints[slot], Fingerprint(key));
    scm::pmem::Persist(&leaf->kv[slot]);
    scm::pmem::Persist(&leaf->fingerprints[slot], 1);
    SCM_CRASH_POINT("fptree.update.before_bitmap");
    uint64_t bmp = leaf->bitmap;
    bmp &= ~(uint64_t{1} << prev_slot);
    bmp |= uint64_t{1} << slot;
    scm::pmem::StorePersist(&leaf->bitmap, bmp);
    SCM_CRASH_POINT("fptree.update.after_bitmap");
    return Status::OK();
  }

  /// Keys per staged MultiGet round: enough in-flight lines to saturate the
  /// modeled memory-level parallelism, small enough for a stack array.
  static constexpr size_t kBatchChunk = 64;

  /// Batched lookup with interleaved prefetched descents (DESIGN.md §11).
  /// Per chunk: (1) run every DRAM-resident inner descent and stage each
  /// target leaf's fingerprint+bitmap line in one ReadBatch, (2) from the
  /// now-prefetched fingerprint arrays compute the MatchByte candidate
  /// masks and stage the candidate KV lines, (3) resolve every key through
  /// the unchanged FindInLeaf, whose SCM touches now hit the staged lines.
  /// Results are bit-identical to a Find() loop — only the miss timing
  /// overlaps.
  void MultiGet(const Key* keys, size_t n, Value* values, uint8_t* found) {
    LeafNode* leaves[kBatchChunk];
    for (size_t base = 0; base < n; base += kBatchChunk) {
      const size_t m = std::min(kBatchChunk, n - base);
      scm::ReadBatch rb;
      for (size_t i = 0; i < m; ++i) {
        Path path;
        leaves[i] = FindLeaf(keys[base + i], &path);
        if (leaves[i] != nullptr) {
          rb.Add(leaves[i],
                 sizeof(leaves[i]->fingerprints) + sizeof(leaves[i]->bitmap));
        }
      }
      rb.Issue();
#if !defined(FPTREE_NO_PREFETCH)
      for (size_t i = 0; i < m; ++i) {
        LeafNode* leaf = leaves[i];
        if (leaf == nullptr) continue;
        uint64_t cand = simd::MatchByte(leaf->fingerprints, kLeafCap,
                                        Fingerprint(keys[base + i])) &
                        leaf->bitmap;
        while (cand != 0) {
          size_t s = static_cast<size_t>(__builtin_ctzll(cand));
          cand &= cand - 1;
          rb.Add(&leaf->kv[s], sizeof(KV));
        }
      }
      rb.Issue();
#endif
      for (size_t i = 0; i < m; ++i) {
        ++stats_.finds;
        int slot = FindInLeaf(leaves[i], keys[base + i]);
        if (slot >= 0) {
          values[base + i] = leaves[i]->kv[slot].value;
          found[base + i] = 1;
        } else {
          found[base + i] = 0;
        }
      }
    }
  }

  /// Batched insert with group persistence: consecutive same-leaf inserts
  /// form one run (see BatchWriter). inserted[i] may be read back as 1/0;
  /// pass nullptr to discard.
  void MultiPut(const Key* keys, const Value* values, size_t n,
                uint8_t* inserted) {
    BatchWriter w(this);
    for (size_t i = 0; i < n; ++i) {
      bool ins = w.Insert(keys[i], values[i]);
      if (inserted != nullptr) inserted[i] = ins ? 1 : 0;
    }
    w.Flush();
  }

  /// Batched upsert; same run discipline, update slots join the run's
  /// single bitmap publish (insert bit set + stale bit clear in one
  /// p-atomic store, the Alg. 8 rule extended to a whole run).
  void MultiUpsert(const Key* keys, const Value* values, size_t n,
                   uint8_t* inserted) {
    BatchWriter w(this);
    for (size_t i = 0; i < n; ++i) {
      bool ins = w.Upsert(keys[i], values[i]);
      if (inserted != nullptr) inserted[i] = ins ? 1 : 0;
    }
    w.Flush();
  }

  /// Removes a key (paper Alg. 5/6). Returns false if absent.
  bool Erase(Key key) {
    Path path;
    LeafNode* prev = nullptr;
    LeafNode* leaf = FindLeafAndPrev(key, &path, &prev);
    int slot = FindInLeaf(leaf, key);
    if (slot < 0) return false;

    bool last_in_leaf = leaf->BitmapCount() == 1;
    bool only_leaf = proot_->head.get() == leaf && leaf->next.IsNull();
    if (last_in_leaf && !only_leaf) {
      DeleteLeaf(leaf, prev);
      inner_.RemoveLeaf(path);
    } else {
      uint64_t bmp = leaf->bitmap & ~(uint64_t{1} << slot);
      scm::pmem::StorePersist(&leaf->bitmap, bmp);
      SCM_CRASH_POINT("fptree.erase.after_bitmap");
    }
    --size_;
    return true;
  }

  /// Ordered scan: up to `limit` pairs with key >= start, ascending.
  void RangeScan(Key start, size_t limit,
                 std::vector<std::pair<Key, Value>>* out) {
    out->clear();
    Path path;
    LeafNode* leaf = FindLeaf(start, &path);
    std::vector<std::pair<Key, Value>> in_leaf;
    while (leaf != nullptr && out->size() < limit) {
      in_leaf.clear();
      scm::ReadScm(leaf, sizeof(leaf->fingerprints) + sizeof(leaf->bitmap));
      for (size_t i = 0; i < kLeafCap; ++i) {
        if (!leaf->TestBit(i)) continue;
        scm::ReadScm(&leaf->kv[i], sizeof(KV));
        if (leaf->kv[i].key >= start) {
          in_leaf.emplace_back(leaf->kv[i].key, leaf->kv[i].value);
        }
      }
      std::sort(in_leaf.begin(), in_leaf.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (auto& p : in_leaf) {
        if (out->size() >= limit) break;
        out->push_back(p);
      }
      leaf = leaf->next.get();
    }
  }

  size_t Size() const { return size_; }

  // --- Introspection ------------------------------------------------------

  ~FPTree() { FlushTreeStats(stats_); }

  TreeOpStats& stats() { return stats_; }
  const TreeOpStats& stats() const { return stats_; }

  /// DRAM footprint: inner nodes + transient leaf-group bookkeeping.
  uint64_t DramBytes() const {
    return inner_.MemoryBytes() +
           free_leaves_.capacity() * sizeof(scm::PPtr<LeafNode>) +
           group_index_.size() * (sizeof(uint64_t) * 4);
  }

  /// SCM footprint (allocator heap consumption of the backing pool).
  uint64_t ScmBytes() const { return pool_->allocator()->heap_used_bytes(); }

  uint32_t Height() const { return inner_.Height(); }

  /// Walks the leaf list and checks structural invariants; used by tests.
  /// Returns false (and explains via *why) on violation.
  bool CheckConsistency(std::string* why) const {
    LeafNode* leaf = proot_->head.get();
    if (leaf == nullptr) {
      *why = "null head";
      return false;
    }
    Key prev_max = 0;
    bool first = true;
    size_t total = 0;
    while (leaf != nullptr) {
      Key mn = ~Key{0}, mx = 0;
      size_t cnt = 0;
      for (size_t i = 0; i < kLeafCap; ++i) {
        if (!leaf->TestBit(i)) continue;
        ++cnt;
        mn = std::min(mn, leaf->kv[i].key);
        mx = std::max(mx, leaf->kv[i].key);
        if (leaf->fingerprints[i] != Fingerprint(leaf->kv[i].key)) {
          *why = "stale fingerprint";
          return false;
        }
      }
      if (cnt > 0) {
        if (!first && mn <= prev_max) {
          *why = "leaf list out of order";
          return false;
        }
        prev_max = mx;
        first = false;
      } else if (leaf != proot_->head.get()) {
        *why = "empty non-head leaf in list";
        return false;
      }
      total += cnt;
      leaf = leaf->next.get();
    }
    if (total != size_) {
      *why = "size mismatch: counted " + std::to_string(total) +
             " vs tracked " + std::to_string(size_);
      return false;
    }
    return true;
  }

  /// Leak check for tests: every allocated block in the pool is reachable
  /// from the tree (root struct, groups or leaves).
  bool CheckNoLeaks(std::string* why) const {
    std::vector<uint64_t> allocated =
        pool_->allocator()->AllocatedPayloadOffsets();
    std::vector<uint64_t> reachable;
    reachable.push_back(pool_->root().offset);
    if constexpr (kUseGroups) {
      for (LeafGroup* g = proot_->groups_head.get(); g != nullptr;
           g = g->next.get()) {
        reachable.push_back(pool_->ToPPtr(g).offset);
      }
    } else {
      for (LeafNode* l = proot_->head.get(); l != nullptr; l = l->next.get()) {
        reachable.push_back(pool_->ToPPtr(l).offset);
      }
    }
    std::sort(allocated.begin(), allocated.end());
    std::sort(reachable.begin(), reachable.end());
    if (allocated != reachable) {
      *why = "allocated " + std::to_string(allocated.size()) +
             " blocks, reachable " + std::to_string(reachable.size());
      return false;
    }
    return true;
  }

  /// Full invariant sweep (DESIGN.md §8): structural consistency, leaf-list
  /// vs. inner-index routing agreement, and the persistent-leak audit.
  /// Non-const because the routing probe reuses the regular descent path.
  bool CheckInvariants(std::string* why) {
    if (!CheckConsistency(why)) return false;
    for (LeafNode* leaf = proot_->head.get(); leaf != nullptr;
         leaf = leaf->next.get()) {
      for (size_t i = 0; i < kLeafCap; ++i) {
        if (!leaf->TestBit(i)) continue;
        Path path;
        if (FindLeaf(leaf->kv[i].key, &path) != leaf) {
          *why = "inner index routes key " + std::to_string(leaf->kv[i].key) +
                 " to the wrong leaf";
          return false;
        }
      }
    }
    return CheckNoLeaks(why);
  }

  /// Nanoseconds spent in the last recovery (inner rebuild etc.).
  uint64_t last_recovery_nanos() const { return recovery_nanos_; }

 private:
  using Inner = InnerIndex<Key, kInnerCap>;
  using Path = typename Inner::Path;

  // --- Search helpers -----------------------------------------------------

  LeafNode* FindLeaf(Key key, Path* path) {
    return static_cast<LeafNode*>(inner_.FindLeaf(key, path));
  }

  /// Descends to the leaf for `key` while tracking the right-most leaf of
  /// the nearest left sibling subtree — the previous leaf in the linked
  /// list (paper's FindLeafAndPrevLeaf).
  LeafNode* FindLeafAndPrev(Key key, Path* path, LeafNode** prev) {
    LeafNode* leaf = FindLeaf(key, path);
    *prev = nullptr;
    // Walk the recorded path upward to the deepest ancestor where we did
    // not take the left-most edge; the previous leaf is the right-most
    // descendant of the child just left of the taken edge.
    for (int level = static_cast<int>(path->depth) - 1; level >= 0; --level) {
      typename Inner::Node* n = path->nodes[level];
      uint32_t slot = path->slots[level];
      if (slot > 0) {
        void* sub = n->children[slot - 1];
        bool leaf_level = n->leaf_children;
        while (!leaf_level) {
          typename Inner::Node* in = static_cast<typename Inner::Node*>(sub);
          sub = in->children[in->n_keys];
          leaf_level = in->leaf_children;
        }
        *prev = static_cast<LeafNode*>(sub);
        break;
      }
    }
    return leaf;
  }

  /// Fingerprint-filtered in-leaf search (paper §4.2). Counts key probes.
  /// The fingerprint line is compared byte-parallel (simd::MatchByte) and
  /// the match mask is ANDed with the validity bitmap; only the surviving
  /// candidates — the same slots, in the same ascending order, that the
  /// scalar byte loop would probe — are charged as key probes.
  int FindInLeaf(LeafNode* leaf, Key key) {
    if (leaf == nullptr) return -1;
    // One SCM line: fingerprints + bitmap.
    scm::ReadScm(leaf, sizeof(leaf->fingerprints) + sizeof(leaf->bitmap));
    uint8_t fp = Fingerprint(key);
    uint64_t candidates =
        simd::MatchByte(leaf->fingerprints, kLeafCap, fp) & leaf->bitmap;
    while (candidates != 0) {
      size_t i = static_cast<size_t>(__builtin_ctzll(candidates));
      candidates &= candidates - 1;
      ++stats_.key_probes;
      scm::ReadScm(&leaf->kv[i], sizeof(KV));
      if (leaf->kv[i].key == key) return static_cast<int>(i);
    }
    return -1;
  }

  // --- Mutation helpers ---------------------------------------------------

  /// In-leaf insertion (paper Alg. 2, lines 12–15): write KV + fingerprint
  /// into a free slot, persist, then p-atomically publish via the bitmap.
  void InsertKV(LeafNode* leaf, Key key, const Value& value) {
    int slot = leaf->FindFirstZero();
    assert(slot >= 0);
    scm::pmem::Store(&leaf->kv[slot], KV{key, value});
    scm::pmem::Store(&leaf->fingerprints[slot], Fingerprint(key));
    scm::pmem::Persist(&leaf->kv[slot]);
    scm::pmem::Persist(&leaf->fingerprints[slot], 1);
    SCM_CRASH_POINT("fptree.insert.before_bitmap");
    scm::pmem::StorePersist(&leaf->bitmap,
                            leaf->bitmap | (uint64_t{1} << slot));
    SCM_CRASH_POINT("fptree.insert.after_bitmap");
  }

  /// Open-run accumulator for batched writes (DESIGN.md §11). Consecutive
  /// ops landing in the same leaf form a "run": KVs and fingerprints are
  /// staged into distinct free slots with their flush ranges coalesced in
  /// one PersistBatch, then Flush() commits the run with exactly two fences
  /// — one PersistBatch commit covering every staged line, one p-atomic
  /// bitmap store publishing all staged bits (and clearing all stale upsert
  /// bits) at once — where the looped path pays three fences per op. Crash
  /// safety: an uncommitted run is entirely invisible (its slots are not in
  /// the bitmap), so a crash leaves exactly the ops before the last
  /// committed run durable — a strict prefix of the batch. A run breaks
  /// when the next op targets a different leaf, repeats a pending key
  /// (keeps loop-oracle duplicate semantics trivially), or the leaf runs
  /// out of free slots (the op falls back to the single-op split path).
  class BatchWriter {
   public:
    explicit BatchWriter(FPTree* t) : t_(t) {}
    ~BatchWriter() { Flush(); }

    bool Insert(Key key, const Value& value) {
      Path path;
      LeafNode* leaf = t_->FindLeaf(key, &path);
      if (leaf != leaf_) Flush();
      if (leaf_ != nullptr && PendingHas(key)) return false;  // dup in batch
      if (t_->FindInLeaf(leaf, key) >= 0) return false;
      int slot = FreeSlotIn(leaf);
      if (slot < 0) {
        Flush();
        return t_->Insert(key, value);  // split path, per-op
      }
      Stage(leaf, slot, key, value);
      ++t_->size_;
      return true;
    }

    bool Upsert(Key key, const Value& value) {
      for (;;) {
        Path path;
        LeafNode* leaf = t_->FindLeaf(key, &path);
        if (leaf != leaf_) Flush();
        if (leaf_ != nullptr && PendingHas(key)) {
          // Same key twice in one batch: publish the open run first so the
          // second op sees the first's value — "last wins", as the loop.
          Flush();
          continue;
        }
        int prev = t_->FindInLeaf(leaf, key);
        int slot = FreeSlotIn(leaf);
        if (slot < 0) {
          Flush();
          return t_->Upsert(key, value);  // split path, per-op
        }
        Stage(leaf, slot, key, value);
        if (prev >= 0) {
          clear_ |= uint64_t{1} << prev;
          return false;
        }
        ++t_->size_;
        return true;
      }
    }

    /// Commits the open run: one coalesced flush fence, one bitmap publish.
    void Flush() {
      if (leaf_ == nullptr) return;
      pb_.Commit();
      SCM_CRASH_POINT("fptree.multiput.before_bitmap");
      scm::pmem::StorePersist(&leaf_->bitmap,
                              (leaf_->bitmap & ~clear_) | set_);
      SCM_CRASH_POINT("fptree.multiput.after_bitmap");
      leaf_ = nullptr;
      set_ = 0;
      clear_ = 0;
      pend_n_ = 0;
    }

   private:
    bool PendingHas(Key key) const {
      for (size_t i = 0; i < pend_n_; ++i) {
        if (pend_keys_[i] == key) return true;
      }
      return false;
    }

    /// First slot free in the published bitmap AND not staged by this run.
    /// Slots pending a clear stay occupied until the publish (their old
    /// value must survive a crash), so they are never handed out here.
    int FreeSlotIn(const LeafNode* leaf) const {
      uint64_t used = leaf->bitmap | set_;
      if constexpr (kLeafCap < 64) {
        used |= ~((uint64_t{1} << kLeafCap) - 1);
      }
      uint64_t inv = ~used;
      return inv == 0 ? -1 : static_cast<int>(__builtin_ctzll(inv));
    }

    void Stage(LeafNode* leaf, int slot, Key key, const Value& value) {
      leaf_ = leaf;
      scm::pmem::Store(&leaf->kv[slot], KV{key, value});
      scm::pmem::Store(&leaf->fingerprints[slot], Fingerprint(key));
      pb_.Add(&leaf->kv[slot], sizeof(KV));
      pb_.Add(&leaf->fingerprints[slot], 1);
      set_ |= uint64_t{1} << slot;
      pend_keys_[pend_n_++] = key;
    }

    FPTree* t_;
    LeafNode* leaf_ = nullptr;     // leaf of the open run (null = none)
    uint64_t set_ = 0;             // staged slots to publish
    uint64_t clear_ = 0;           // stale upsert slots to retire
    Key pend_keys_[kLeafCap];      // keys staged in the open run
    size_t pend_n_ = 0;
    scm::pmem::PersistBatch pb_;
  };

  /// Out-of-space result for a write path that could not allocate. The
  /// failed op was not applied and the tree is structurally untouched.
  static Status NoSpace() {
    return Status::ResourceExhausted(
        "fptree: pool out of space (split allocation failed)");
  }

  /// Leaf split (paper Alg. 3). Returns the new right sibling and the split
  /// key (max of the surviving lower half). Returns nullptr when the pool
  /// cannot supply a new leaf: the armed split log is rolled back before
  /// returning, so nothing is leaked and the old leaf is untouched — the
  /// in-process mirror of RecoverSplit's "p_new null" undo case.
  LeafNode* SplitLeaf(LeafNode* leaf, Key* split_key) {
    SplitLog* log = &proot_->split_log;
    scm::pmem::StorePPtrPersist(&log->p_current, pool_->ToPPtr(leaf));
    SCM_CRASH_POINT("fptree.split.logged");

    LeafNode* new_leaf = AcquireLeaf(&log->p_new);
    if (new_leaf == nullptr) {
      ResetSplitLog(log);
      return nullptr;
    }
    ++stats_.leaf_splits;
    SCM_CRASH_POINT("fptree.split.allocated");

    *split_key = FinishSplitFromCopy(log);
    return new_leaf;
  }

  /// Alg. 3 lines 6–15; also the redo path of RecoverSplit (Alg. 4) when
  /// the crash hit before the old leaf's bitmap was halved (leaf still
  /// full). Returns the split key.
  Key FinishSplitFromCopy(SplitLog* log) {
    LeafNode* leaf = log->p_current.get();
    LeafNode* new_leaf = log->p_new.get();
    // Copy the full leaf content into the new leaf.
    scm::pmem::StoreBytes(new_leaf, leaf, sizeof(LeafNode));
    scm::pmem::Persist(new_leaf, sizeof(LeafNode));
    SCM_CRASH_POINT("fptree.split.copied");
    // Compute the split key and the upper-half bitmap.
    Key sk = ComputeSplitKey(leaf);
    uint64_t upper = 0;
    for (size_t i = 0; i < kLeafCap; ++i) {
      if (leaf->TestBit(i) && leaf->kv[i].key > sk) upper |= uint64_t{1} << i;
    }
    scm::pmem::StorePersist(&new_leaf->bitmap, upper);
    SCM_CRASH_POINT("fptree.split.new_bitmap");
    scm::pmem::StorePersist(&leaf->bitmap, leaf->bitmap & ~upper);
    SCM_CRASH_POINT("fptree.split.old_bitmap");
    FinishSplitTail(log);
    return sk;
  }

  /// Alg. 3 lines 11–15 as a redo: recomputes the old leaf's bitmap as the
  /// inverse of the (already durable) new leaf's bitmap, links, resets.
  /// Used by RecoverSplit when the old bitmap was already halved.
  void FinishSplitFromInverse(SplitLog* log) {
    LeafNode* leaf = log->p_current.get();
    LeafNode* new_leaf = log->p_new.get();
    uint64_t mask = kLeafCap == 64 ? ~uint64_t{0}
                                   : ((uint64_t{1} << kLeafCap) - 1);
    scm::pmem::StorePersist(&leaf->bitmap, ~new_leaf->bitmap & mask);
    FinishSplitTail(log);
  }

  void FinishSplitTail(SplitLog* log) {
    LeafNode* leaf = log->p_current.get();
    scm::pmem::StorePPtrPersist(&leaf->next, log->p_new);
    SCM_CRASH_POINT("fptree.split.linked");
    ResetSplitLog(log);
  }

  void ResetSplitLog(SplitLog* log) {
    scm::pmem::StorePPtr(&log->p_current, scm::PPtr<LeafNode>::Null());
    scm::pmem::StorePPtr(&log->p_new, scm::PPtr<LeafNode>::Null());
    scm::pmem::Persist(log, sizeof(*log));
  }

  /// Max key of the lower half of a full leaf.
  Key ComputeSplitKey(LeafNode* leaf) const {
    Key keys[kLeafCap];
    size_t n = 0;
    for (size_t i = 0; i < kLeafCap; ++i) {
      if (leaf->TestBit(i)) keys[n++] = leaf->kv[i].key;
    }
    size_t h = n / 2;
    std::nth_element(keys, keys + (h - 1), keys + n);
    return keys[h - 1];
  }

  /// Unlinks and frees an empty leaf (paper Alg. 5 case 3 + Alg. 6).
  void DeleteLeaf(LeafNode* leaf, LeafNode* prev) {
    ++stats_.leaf_deletes;
    DeleteLog* log = &proot_->delete_log;
    scm::pmem::StorePPtrPersist(&log->p_current, pool_->ToPPtr(leaf));
    SCM_CRASH_POINT("fptree.delete.logged");
    if (proot_->head.get() == leaf) {
      scm::pmem::StorePPtrPersist(&proot_->head, leaf->next);
      SCM_CRASH_POINT("fptree.delete.head_updated");
    } else {
      assert(prev != nullptr);
      scm::pmem::StorePPtrPersist(&log->p_prev, pool_->ToPPtr(prev));
      SCM_CRASH_POINT("fptree.delete.prev_logged");
      scm::pmem::StorePPtrPersist(&prev->next, leaf->next);
      SCM_CRASH_POINT("fptree.delete.unlinked");
    }
    // Clear the bitmap so recovery's group walk classifies it as free.
    scm::pmem::StorePersist(&leaf->bitmap, uint64_t{0});
    SCM_CRASH_POINT("fptree.delete.bitmap_cleared");
    if constexpr (kUseGroups) {
      // The delete is logically complete (unlinked + emptied). Reset the
      // delete log BEFORE FreeLeaf: FreeLeaf may deallocate the whole leaf
      // group, and a stale p_current into a freed group would poison
      // RecoverDelete. (FreeLeaf carries its own micro-log.)
      ResetDeleteLog(log);
      FreeLeaf(leaf);
    } else {
      // Paper Alg. 6 line 14: the allocator persistently nulls p_current.
      pool_->allocator()->Deallocate(&log->p_current);
      SCM_CRASH_POINT("fptree.delete.deallocated");
      ResetDeleteLog(log);
    }
  }

  void ResetDeleteLog(DeleteLog* log) {
    scm::pmem::StorePPtr(&log->p_current, scm::PPtr<LeafNode>::Null());
    scm::pmem::StorePPtr(&log->p_prev, scm::PPtr<LeafNode>::Null());
    scm::pmem::Persist(log, sizeof(*log));
  }

  // --- Leaf acquisition: groups (Alg. 10–13) or direct allocation ---------

  /// Fills *slot with a ready-to-use leaf and returns it; nullptr when the
  /// pool is exhausted (*slot is left untouched/null — nothing to leak).
  LeafNode* AcquireLeaf(scm::PPtr<LeafNode>* slot) {
    if constexpr (kUseGroups) {
      LeafNode* leaf = GetLeaf();
      if (leaf == nullptr) return nullptr;
      scm::pmem::StorePPtrPersist(slot, pool_->ToPPtr(leaf));
      return leaf;
    } else {
      Status s = pool_->allocator()->Allocate(slot, sizeof(LeafNode));
      if (!s.ok()) return nullptr;
      return slot->get();
    }
  }

  /// Paper Alg. 10.
  LeafNode* GetLeaf() {
    if (free_leaves_.empty()) {
      GetLeafLog* log = &proot_->get_leaf_log;
      Status s =
          pool_->allocator()->Allocate(&log->p_new_group, sizeof(LeafGroup));
      if (!s.ok()) return nullptr;
      SCM_CRASH_POINT("fptree.getleaf.allocated");
      LinkNewGroup(log);
    }
    scm::PPtr<LeafNode> p = free_leaves_.back();
    free_leaves_.pop_back();
    NoteLeafTaken(p.offset);
    return p.get();
  }

  /// Alg. 10 lines 4–9; also the redo path of Alg. 11.
  void LinkNewGroup(GetLeafLog* log) {
    LeafGroup* group = log->p_new_group.get();
    // Initialize: next pointer null, every leaf empty (blocks can be
    // recycled and carry stale bytes).
    scm::pmem::StorePPtr(&group->next, scm::PPtr<LeafGroup>::Null());
    for (size_t i = 0; i < kGroupSize; ++i) {
      scm::pmem::Store(&group->leaves[i].bitmap, uint64_t{0});
      scm::pmem::StorePPtr(&group->leaves[i].next,
                           scm::PPtr<LeafNode>::Null());
      scm::pmem::StoreVolatile(&group->leaves[i].lock_word, uint64_t{0});
    }
    scm::pmem::Persist(group, sizeof(LeafGroup));
    SCM_CRASH_POINT("fptree.getleaf.initialized");
    if (proot_->groups_tail.IsNull()) {
      scm::pmem::StorePPtrPersist(&proot_->groups_head, log->p_new_group);
    } else {
      scm::pmem::StorePPtrPersist(&proot_->groups_tail.get()->next,
                                  log->p_new_group);
    }
    SCM_CRASH_POINT("fptree.getleaf.linked");
    scm::pmem::StorePPtrPersist(&proot_->groups_tail, log->p_new_group);
    SCM_CRASH_POINT("fptree.getleaf.tail_updated");
    scm::pmem::StorePPtrPersist(&log->p_new_group,
                                scm::PPtr<LeafGroup>::Null());
    RegisterGroup(pool_->ToPPtr(group).offset, /*all_free=*/true);
  }

  /// Paper Alg. 12 (with persistent tail maintenance added).
  void FreeLeaf(LeafNode* leaf) {
    uint64_t leaf_off = pool_->ToPPtr(leaf).offset;
    auto git = FindGroupOf(leaf_off);
    assert(git != group_index_.end());
    uint64_t group_off = git->first;
    GroupInfo& info = git->second;
    if (info.free_count + 1 == kGroupSize) {
      // Group completely free: deallocate it (Alg. 12 lines 4–19).
      DropGroupLeavesFromFreeVector(group_off);
      FreeLeafLog* log = &proot_->free_leaf_log;
      scm::PPtr<LeafGroup> pgroup{pool_->id(), group_off};
      scm::pmem::StorePPtrPersist(&log->p_current_group, pgroup);
      SCM_CRASH_POINT("fptree.freeleaf.logged");
      UnlinkGroup(log);
      group_index_.erase(git);
    } else {
      ++info.free_count;
      free_leaves_.push_back(scm::PPtr<LeafNode>{pool_->id(), leaf_off});
    }
  }

  /// Alg. 12 lines 8–19; also the redo path of Alg. 13.
  void UnlinkGroup(FreeLeafLog* log) {
    LeafGroup* group = log->p_current_group.get();
    if (proot_->groups_head.get() == group) {
      scm::pmem::StorePPtrPersist(&proot_->groups_head, group->next);
      SCM_CRASH_POINT("fptree.freeleaf.head_updated");
    } else {
      LeafGroup* prev = FindPrevGroup(group);
      assert(prev != nullptr);
      scm::pmem::StorePPtrPersist(&log->p_prev_group, pool_->ToPPtr(prev));
      SCM_CRASH_POINT("fptree.freeleaf.prev_logged");
      scm::pmem::StorePPtrPersist(&prev->next, group->next);
      SCM_CRASH_POINT("fptree.freeleaf.unlinked");
    }
    // Maintain the persistent tail (needed so appends stay O(1)).
    if (proot_->groups_tail.get() == group) {
      scm::PPtr<LeafGroup> new_tail =
          log->p_prev_group.IsNull() ? scm::PPtr<LeafGroup>::Null()
                                     : log->p_prev_group;
      scm::pmem::StorePPtrPersist(&proot_->groups_tail, new_tail);
    }
    SCM_CRASH_POINT("fptree.freeleaf.tail_updated");
    pool_->allocator()->Deallocate(&log->p_current_group);
    SCM_CRASH_POINT("fptree.freeleaf.deallocated");
    scm::pmem::StorePPtrPersist(&log->p_prev_group,
                                scm::PPtr<LeafGroup>::Null());
  }

  LeafGroup* FindPrevGroup(LeafGroup* group) {
    LeafGroup* prev = nullptr;
    for (LeafGroup* g = proot_->groups_head.get(); g != nullptr;
         g = g->next.get()) {
      if (g == group) return prev;
      prev = g;
    }
    return nullptr;
  }

  // --- Transient group bookkeeping ----------------------------------------

  struct GroupInfo {
    uint32_t free_count = 0;
  };

  void RegisterGroup(uint64_t group_off, bool all_free) {
    GroupInfo info;
    info.free_count = all_free ? kGroupSize : 0;
    auto [it, inserted] = group_index_.emplace(group_off, info);
    (void)inserted;
    if (all_free) {
      LeafGroup* group = scm::PPtr<LeafGroup>{pool_->id(), group_off}.get();
      for (size_t i = 0; i < kGroupSize; ++i) {
        free_leaves_.push_back(pool_->ToPPtr(&group->leaves[i]));
      }
    }
  }

  typename std::map<uint64_t, GroupInfo>::iterator FindGroupOf(
      uint64_t leaf_off) {
    auto it = group_index_.upper_bound(leaf_off);
    if (it == group_index_.begin()) return group_index_.end();
    --it;
    if (leaf_off >= it->first + sizeof(LeafGroup)) return group_index_.end();
    return it;
  }

  void NoteLeafTaken(uint64_t leaf_off) {
    if constexpr (!kUseGroups) return;
    auto it = FindGroupOf(leaf_off);
    if (it != group_index_.end() && it->second.free_count > 0) {
      --it->second.free_count;
    }
  }

  void DropGroupLeavesFromFreeVector(uint64_t group_off) {
    auto in_group = [&](const scm::PPtr<LeafNode>& p) {
      return p.offset >= group_off && p.offset < group_off + sizeof(LeafGroup);
    };
    free_leaves_.erase(
        std::remove_if(free_leaves_.begin(), free_leaves_.end(), in_group),
        free_leaves_.end());
  }

  // --- Initialization & recovery ------------------------------------------

  void AttachOrInit() {
    uint64_t t0 = NowNanos();
    if (pool_->root().IsNull()) {
      Status s = pool_->allocator()->Allocate(&pool_->header()->root,
                                              sizeof(PRoot));
      assert(s.ok());
      (void)s;
    }
    proot_ = static_cast<PRoot*>(pool_->root().get());
    if (proot_->magic != PRoot::kMagic) {
      PRoot zero{};
      zero.magic = PRoot::kMagic;
      scm::pmem::StoreBytes(proot_, &zero, sizeof(zero));
      scm::pmem::Persist(proot_, sizeof(*proot_));
    }

    // Micro-log replay (paper Alg. 9). The allocator's own log already ran
    // during pool open.
    RecoverSplit();
    RecoverDelete();
    RecoverGetLeaf();
    RecoverFreeLeaf();

    RebuildTransientState();

    if (proot_->head.IsNull()) {
      // Bootstrap: the tree always owns one (possibly empty) head leaf.
      LeafNode* first = AcquireLeaf(&proot_->head);
      assert(first != nullptr);
      scm::pmem::StorePersist(&first->bitmap, uint64_t{0});
      scm::pmem::StorePPtrPersist(&first->next, scm::PPtr<LeafNode>::Null());
      inner_.Clear();
      inner_.InitSingleLeaf(first);
      size_ = 0;
    }
    if (!pool_->root_initialized()) pool_->SetRootInitialized();
    recovery_nanos_ = NowNanos() - t0;
    RecordRecovery(recovery_nanos_, RecoverThreads());
  }

  /// Paper Alg. 4: if the split leaf is still full the crash hit before
  /// line 11 (redo from the copy); otherwise the old bitmap was already
  /// halved (redo from line 11 using the durable new-leaf bitmap).
  void RecoverSplit() {
    SplitLog* log = &proot_->split_log;
    if (log->p_current.IsNull()) {
      ResetSplitLog(log);
      return;
    }
    if (log->p_new.IsNull()) {
      // Crashed before the allocation completed; the allocator rolled back.
      ResetSplitLog(log);
      return;
    }
    if (log->p_current.get()->IsFull()) {
      FinishSplitFromCopy(log);
    } else {
      FinishSplitFromInverse(log);
    }
  }

  /// Paper Alg. 7, with FreeLeaf deferred to the group walk (the free
  /// vector and group free-counts are transient and rebuilt from scratch).
  void RecoverDelete() {
    DeleteLog* log = &proot_->delete_log;
    if (log->p_current.IsNull()) {
      ResetDeleteLog(log);
      return;
    }
    LeafNode* leaf = log->p_current.get();
    LeafNode* head = proot_->head.get();
    if (!log->p_prev.IsNull()) {
      // Crashed between prev-pointer logging and completion: redo unlink.
      LeafNode* prev = log->p_prev.get();
      scm::pmem::StorePPtrPersist(&prev->next, leaf->next);
      FinishDeleteRecovery(log);
    } else if (leaf == head) {
      // Crashed right after logging, head not yet advanced: redo.
      scm::pmem::StorePPtrPersist(&proot_->head, leaf->next);
      FinishDeleteRecovery(log);
    } else if (leaf->next.get() == head) {
      // Head already advanced past the leaf: finish.
      FinishDeleteRecovery(log);
    } else {
      // Middle-of-list delete that never logged prev: nothing happened.
      ResetDeleteLog(log);
    }
  }

  void FinishDeleteRecovery(DeleteLog* log) {
    LeafNode* leaf = log->p_current.get();
    scm::pmem::StorePersist(&leaf->bitmap, uint64_t{0});
    if constexpr (!kUseGroups) {
      pool_->allocator()->Deallocate(&log->p_current);
    }
    ResetDeleteLog(log);
  }

  /// Paper Alg. 11.
  void RecoverGetLeaf() {
    if constexpr (!kUseGroups) return;
    GetLeafLog* log = &proot_->get_leaf_log;
    if (log->p_new_group.IsNull()) return;
    if (proot_->groups_tail == log->p_new_group) {
      // Fully linked; only the log reset was lost.
      scm::pmem::StorePPtrPersist(&log->p_new_group,
                                  scm::PPtr<LeafGroup>::Null());
    } else {
      LinkNewGroup(log);
    }
  }

  /// Paper Alg. 13.
  void RecoverFreeLeaf() {
    if constexpr (!kUseGroups) return;
    FreeLeafLog* log = &proot_->free_leaf_log;
    if (log->p_current_group.IsNull()) {
      // Either never engaged, or crashed after Deallocate (which nulls
      // p_current_group); clear the prev field either way.
      scm::pmem::StorePPtrPersist(&log->p_prev_group,
                                  scm::PPtr<LeafGroup>::Null());
      return;
    }
    LeafGroup* group = log->p_current_group.get();
    LeafGroup* head = proot_->groups_head.get();
    if (!log->p_prev_group.IsNull()) {
      LeafGroup* prev = log->p_prev_group.get();
      scm::pmem::StorePPtrPersist(&prev->next, group->next);
      FinishFreeLeafRecovery(log);
    } else if (group == head) {
      scm::pmem::StorePPtrPersist(&proot_->groups_head, group->next);
      FinishFreeLeafRecovery(log);
    } else if (group->next.get() == head) {
      FinishFreeLeafRecovery(log);
    } else {
      scm::pmem::StorePPtrPersist(&log->p_current_group,
                                  scm::PPtr<LeafGroup>::Null());
    }
  }

  void FinishFreeLeafRecovery(FreeLeafLog* log) {
    LeafGroup* group = log->p_current_group.get();
    if (proot_->groups_tail.get() == group) {
      scm::pmem::StorePPtrPersist(&proot_->groups_tail, log->p_prev_group);
    }
    pool_->allocator()->Deallocate(&log->p_current_group);
    scm::pmem::StorePPtrPersist(&log->p_prev_group,
                                scm::PPtr<LeafGroup>::Null());
  }

  /// Per-shard output of the parallel recovery scan. Shards scan disjoint
  /// contiguous runs of the (already collected) group/leaf array into
  /// private vectors, which are merged in shard order — so the merged
  /// result is element-for-element what the serial walk would produce.
  struct RecoveryShard {
    std::vector<std::pair<Key, void*>> live;  // (max key, leaf)
    std::vector<scm::PPtr<LeafNode>> free_leaves;
    std::vector<std::pair<uint64_t, GroupInfo>> groups;
    size_t size = 0;
  };

  /// Rebuilds all transient state: inner nodes (bulk build from per-leaf
  /// max keys), the free-leaves vector, the group index, lock words, and
  /// the size counter. With groups this walks the group list for data
  /// locality (paper Appendix B "Recovery"); in-tree membership is decided
  /// by a non-empty bitmap (FreeLeaf durably clears bitmaps).
  ///
  /// The list walk itself is a serial pointer chase (cheap: one next-pointer
  /// dereference per group), but scanning each group's leaves — bitmap
  /// popcounts, per-slot max-key reduction, lock-word resets — is
  /// embarrassingly parallel, so it is sharded across RecoverThreads()
  /// workers. Each worker touches disjoint leaves (lock-word stores never
  /// alias) and charges SCM reads against its own thread-local modeled
  /// cache. BulkBuild stays serial and bottom-up, exactly Alg. 9.
  void RebuildTransientState() {
    inner_.Clear();
    free_leaves_.clear();
    group_index_.clear();
    size_ = 0;
    std::vector<std::pair<Key, void*>> live;  // (max key, leaf)

    LeafNode* head = proot_->head.get();
    const uint32_t threads = RecoverThreads();
    if constexpr (kUseGroups) {
      std::vector<LeafGroup*> groups;
      for (LeafGroup* g = proot_->groups_head.get(); g != nullptr;
           g = g->next.get()) {
        groups.push_back(g);
      }
      std::vector<RecoveryShard> shards(
          std::max<size_t>(size_t{1}, std::min<size_t>(threads,
                                                       groups.size())));
      ParallelShards(groups.size(), threads,
                     [&](size_t shard, size_t begin, size_t end) {
        RecoveryShard& out = shards[shard];
        for (size_t gi = begin; gi < end; ++gi) {
          LeafGroup* g = groups[gi];
          uint64_t group_off = pool_->ToPPtr(g).offset;
          GroupInfo info;
          for (size_t i = 0; i < kGroupSize; ++i) {
            LeafNode* leaf = &g->leaves[i];
            scm::pmem::StoreVolatile(&leaf->lock_word, uint64_t{0});
            if (leaf->bitmap == 0 && leaf != head) {
              ++info.free_count;
              out.free_leaves.push_back(pool_->ToPPtr(leaf));
            } else {
              CollectLiveLeaf(leaf, &out.live, &out.size);
            }
          }
          out.groups.emplace_back(group_off, info);
        }
      });
      for (RecoveryShard& out : shards) MergeRecoveryShard(&out, &live);
      // Fix the persistent tail if a crash left it stale.
      LeafGroup* last = groups.empty() ? nullptr : groups.back();
      scm::PPtr<LeafGroup> tail =
          last == nullptr ? scm::PPtr<LeafGroup>::Null() : pool_->ToPPtr(last);
      if (!(proot_->groups_tail == tail)) {
        scm::pmem::StorePPtrPersist(&proot_->groups_tail, tail);
      }
    } else {
      std::vector<LeafNode*> leaves;
      for (LeafNode* leaf = head; leaf != nullptr; leaf = leaf->next.get()) {
        leaves.push_back(leaf);
      }
      std::vector<RecoveryShard> shards(
          std::max<size_t>(size_t{1}, std::min<size_t>(threads,
                                                       leaves.size())));
      ParallelShards(leaves.size(), threads,
                     [&](size_t shard, size_t begin, size_t end) {
        RecoveryShard& out = shards[shard];
        for (size_t li = begin; li < end; ++li) {
          scm::pmem::StoreVolatile(&leaves[li]->lock_word, uint64_t{0});
          CollectLiveLeaf(leaves[li], &out.live, &out.size);
        }
      });
      for (RecoveryShard& out : shards) MergeRecoveryShard(&out, &live);
    }

    if (!live.empty()) {
      std::sort(live.begin(), live.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      inner_.BulkBuild(live);
    } else if (head != nullptr) {
      inner_.InitSingleLeaf(head);
    }
  }

  void MergeRecoveryShard(RecoveryShard* out,
                          std::vector<std::pair<Key, void*>>* live) {
    live->insert(live->end(), out->live.begin(), out->live.end());
    free_leaves_.insert(free_leaves_.end(), out->free_leaves.begin(),
                        out->free_leaves.end());
    group_index_.insert(out->groups.begin(), out->groups.end());
    size_ += out->size;
  }

  void CollectLiveLeaf(LeafNode* leaf,
                       std::vector<std::pair<Key, void*>>* live,
                       size_t* size) {
    scm::ReadScm(leaf, sizeof(leaf->fingerprints) + sizeof(leaf->bitmap));
    // Seed max_key from the first live slot (Key{0} is not a safe identity
    // for arbitrary key types); iterate live slots via ctz.
    Key max_key{};
    size_t cnt = 0;
    uint64_t valid = leaf->bitmap;
    while (valid != 0) {
      size_t i = static_cast<size_t>(__builtin_ctzll(valid));
      valid &= valid - 1;
      scm::ReadScm(&leaf->kv[i], sizeof(KV));
      max_key = cnt == 0 ? leaf->kv[i].key : std::max(max_key,
                                                      leaf->kv[i].key);
      ++cnt;
    }
    *size += cnt;
    if (cnt > 0) live->emplace_back(max_key, leaf);
  }

  scm::Pool* pool_;
  PRoot* proot_ = nullptr;
  Inner inner_;
  std::vector<scm::PPtr<LeafNode>> free_leaves_;
  std::map<uint64_t, GroupInfo> group_index_;
  size_t size_ = 0;
  uint64_t recovery_nanos_ = 0;
  TreeOpStats stats_;
};

}  // namespace core
}  // namespace fptree
