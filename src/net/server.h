// Copyright (c) FPTree reproduction authors.
//
// Epoll-based pipelined KV server (DESIGN.md §9): a fixed pool of IO worker
// threads, each running its own epoll loop over the connections it owns.
// Worker 0 additionally owns the listening socket and hands accepted fds to
// the other workers round-robin through eventfd-signalled inboxes. Request
// batching happens per wakeup: every complete frame buffered on a readable
// connection is executed against the index and its response appended to the
// connection's output queue before a single flush attempt. Output queues
// are bounded — a connection whose peer stops reading is paused (EPOLLIN
// disarmed, processing stopped) until the queue drains below the resume
// watermark. SIGTERM (via InstallDrainOnSignal) triggers a graceful drain:
// stop accepting, serve every request fully received at the cutoff, flush,
// half-close, and exit the workers.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "index/kv_index.h"
#include "util/status.h"

namespace fptree {
namespace net {

namespace internal {
struct Worker;
}  // namespace internal

/// \brief The server. One instance fronts one VarIndex; all methods except
/// BeginDrain must be called from the owning (non-worker) thread.
class Server {
 public:
  struct Options {
    /// TCP port; 0 binds a kernel-assigned port (read it back via port()).
    uint16_t port = 0;
    /// Listen address.
    std::string host = "127.0.0.1";
    /// IO worker threads (accept + event loops). At least 1.
    uint32_t io_threads = 2;
    /// Per-connection output queue bound; crossing it pauses reads.
    size_t max_output_bytes = 4u << 20;
    /// Resume watermark: reads re-arm once the queue drains below this.
    size_t resume_output_bytes = 1u << 20;
    /// listen(2) backlog.
    int backlog = 128;
    /// During a drain, connections that still have unflushed output (or an
    /// unread half-close) are force-closed after this grace period.
    uint32_t drain_grace_ms = 5000;
    /// Kernel send-buffer size for accepted sockets (SO_SNDBUF); 0 keeps
    /// the kernel default with autotuning. Capping it makes the userspace
    /// output-queue bound bite deterministically (the kernel otherwise
    /// absorbs megabytes before ::send returns EAGAIN).
    int sndbuf_bytes = 0;
  };

  /// The index must outlive the server. Non-concurrent indexes should be
  /// created with locked=true (the registry's global-lock arrangement).
  Server(index::VarIndex* index, const Options& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the IO workers.
  Status Start();

  /// The bound port (after Start); useful with Options::port == 0.
  uint16_t port() const { return port_; }

  /// Initiates a graceful drain. Async-signal-safe (atomic store + eventfd
  /// writes), idempotent. Workers stop accepting, serve what was fully
  /// received, flush, and exit.
  void BeginDrain();

  /// Blocks until every worker has exited (i.e. a drain completed).
  void Join();

  /// BeginDrain + Join. Safe to call more than once.
  void Shutdown();

  /// Live connection count (drives the net.connections gauge).
  uint64_t connections() const {
    return connections_.load(std::memory_order_relaxed);
  }

  /// Total responses fully written to sockets ("acked" operations).
  uint64_t acked_ops() const {
    return acked_ops_.load(std::memory_order_relaxed);
  }

  bool draining() const { return drain_.load(std::memory_order_relaxed); }

 private:
  friend struct internal::Worker;

  void WorkerMain(uint32_t id);

  index::VarIndex* const index_;
  const Options options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> drain_{false};
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> acked_ops_{0};
  std::vector<std::unique_ptr<internal::Worker>> workers_;
  std::vector<std::thread> threads_;
  bool started_ = false;
  bool joined_ = false;
};

/// Installs a signal handler (default SIGTERM) that calls BeginDrain on
/// `server`. Pass nullptr to uninstall before the server is destroyed.
/// The handler is async-signal-safe.
void InstallDrainOnSignal(Server* server, int signo);

}  // namespace net
}  // namespace fptree
