#include "engine/sharded_index.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <queue>
#include <utility>

#include "core/recovery.h"
#include "util/hash.h"
#include "util/threading.h"

namespace fptree {
namespace engine {
namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint32_t EffectiveThreads(uint32_t requested, size_t shards) {
  uint32_t n = requested != 0 ? requested : core::RecoverThreads();
  if (n == 0) n = 1;
  return static_cast<uint32_t>(std::min<size_t>(n, shards));
}

std::string ShardPath(const std::string& prefix, size_t i) {
  return prefix + "." + std::to_string(i);
}

Status ValidateOptions(const ShardedOptions& opts) {
  if (opts.shards < 1 || opts.shards > 32) {
    return Status::InvalidArgument(
        "sharded engine: shards must be in [1, 32], got " +
        std::to_string(opts.shards));
  }
  if (opts.base_pool_id < 1 ||
      opts.base_pool_id + opts.shards > scm::kMaxPools) {
    return Status::InvalidArgument(
        "sharded engine: pool ids [" + std::to_string(opts.base_pool_id) +
        ", " + std::to_string(opts.base_pool_id + opts.shards) +
        ") fall outside [1, " + std::to_string(scm::kMaxPools) + ")");
  }
  if (opts.path_prefix.empty()) {
    return Status::InvalidArgument("sharded engine: empty path_prefix");
  }
  return Status::OK();
}

/// Opens every shard pool and constructs the inner index, shard-parallel.
/// ShardT is ShardedKVIndex::Shard or ShardedVarIndex::Shard; MakeInner is
/// Status(name, pool, locked, out).
template <typename ShardT, typename MakeInner>
Status OpenShards(const std::string& inner, const ShardedOptions& opts,
                  const MakeInner& make_inner, std::vector<ShardT>* shards) {
  shards->resize(opts.shards);
  std::vector<Status> errors(opts.shards);
  const uint32_t threads = EffectiveThreads(opts.threads, opts.shards);
  ParallelShards(opts.shards, threads,
                 [&](size_t, size_t begin, size_t end) {
                   for (size_t i = begin; i < end; ++i) {
                     ShardT& s = (*shards)[i];
                     uint64_t t0 = NowNanos();
                     scm::Pool::Options popts;
                     popts.size = opts.shard_bytes;
                     popts.randomize_base = opts.randomize_base;
                     bool created = false;
                     Status st = scm::Pool::OpenOrCreate(
                         ShardPath(opts.path_prefix, i),
                         opts.base_pool_id + i, popts, &s.pool, &created);
                     if (!st.ok()) {
                       errors[i] = std::move(st);
                       continue;
                     }
                     // Inner construction is attach-time recovery for
                     // pool-backed trees.
                     st = make_inner(inner, s.pool.get(), opts.locked,
                                     &s.index);
                     if (!st.ok()) {
                       errors[i] = std::move(st);
                       s.pool.reset();
                       continue;
                     }
                     s.open_nanos = NowNanos() - t0;
                   }
                 });
  for (size_t i = 0; i < errors.size(); ++i) {
    if (!errors[i].ok()) {
      shards->clear();  // release every pool before reporting
      return Status::IOError("shard " + std::to_string(i) + ": " +
                             errors[i].ToString());
    }
  }
  return Status::OK();
}

/// K-way streaming merge over per-shard cursors. Hash partitioning puts
/// each key in exactly one shard, so the heap never holds duplicates; the
/// shard index tie-break only makes the order deterministic if an
/// application ever loads the same key into two shards by hand.
class MergedKVCursor final : public index::KVScanCursor {
 public:
  MergedKVCursor(std::vector<std::unique_ptr<index::KVScanCursor>> cursors,
                 size_t limit)
      : cursors_(std::move(cursors)), remaining_(limit) {
    for (size_t i = 0; i < cursors_.size(); ++i) Pull(i);
  }

  bool Next(uint64_t* key, uint64_t* value) override {
    if (remaining_ == 0 || heap_.empty()) return false;
    Entry e = heap_.top();
    heap_.pop();
    Pull(e.shard);
    *key = e.key;
    *value = e.value;
    --remaining_;
    return true;
  }

  void Close() override {
    remaining_ = 0;
    for (auto& c : cursors_) {
      if (c) c->Close();
    }
    heap_ = {};
  }

 private:
  struct Entry {
    uint64_t key;
    uint64_t value;
    size_t shard;
  };
  struct Greater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.key != b.key) return a.key > b.key;
      return a.shard > b.shard;
    }
  };

  void Pull(size_t shard) {
    Entry e;
    e.shard = shard;
    if (cursors_[shard] && cursors_[shard]->Next(&e.key, &e.value)) {
      heap_.push(e);
    }
  }

  std::vector<std::unique_ptr<index::KVScanCursor>> cursors_;
  std::priority_queue<Entry, std::vector<Entry>, Greater> heap_;
  size_t remaining_;
};

class MergedVarCursor final : public index::VarScanCursor {
 public:
  MergedVarCursor(std::vector<std::unique_ptr<index::VarScanCursor>> cursors,
                  size_t limit)
      : cursors_(std::move(cursors)), remaining_(limit) {
    for (size_t i = 0; i < cursors_.size(); ++i) Pull(i);
  }

  bool Next(std::string* key, uint64_t* value) override {
    if (remaining_ == 0 || heap_.empty()) return false;
    Entry e = heap_.top();
    heap_.pop();
    Pull(e.shard);
    *key = std::move(e.key);
    *value = e.value;
    --remaining_;
    return true;
  }

  void Close() override {
    remaining_ = 0;
    for (auto& c : cursors_) {
      if (c) c->Close();
    }
    heap_ = {};
  }

 private:
  struct Entry {
    std::string key;
    uint64_t value;
    size_t shard;
  };
  struct Greater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.key != b.key) return a.key > b.key;
      return a.shard > b.shard;
    }
  };

  void Pull(size_t shard) {
    Entry e;
    e.shard = shard;
    if (cursors_[shard] && cursors_[shard]->Next(&e.key, &e.value)) {
      heap_.push(e);
    }
  }

  std::vector<std::unique_ptr<index::VarScanCursor>> cursors_;
  std::priority_queue<Entry, std::vector<Entry>, Greater> heap_;
  size_t remaining_;
};

/// Aggregates shard snapshots: counters and top-level gauges sum; every
/// shard gauge is re-exported under shard.<i>.<name>, and summed counters
/// are additionally exported as engine-level totals (engine.total.<name>)
/// so rollups survive downstream grouping on the first dot.
template <typename Shards>
obs::Snapshot AggregateStats(const Shards& shards) {
  obs::Snapshot agg;
  for (size_t i = 0; i < shards.size(); ++i) {
    obs::Snapshot s = shards[i].index->Stats();
    for (const auto& [name, v] : s.counters) {
      agg.counters[name] += v;
      agg.counters["engine.total." + name] += v;
    }
    for (const auto& [name, v] : s.gauges) {
      agg.gauges[name] += v;
      agg.gauges["shard." + std::to_string(i) + "." + name] = v;
    }
  }
  agg.gauges["engine.shards"] = shards.size();
  return agg;
}

/// Fan-out invariant check; failures are concatenated with shard tags.
template <typename Shards>
bool FanOutInvariants(Shards& shards, uint32_t threads, std::string* why) {
  std::atomic<bool> ok{true};
  std::mutex why_mu;
  ParallelShards(shards.size(), EffectiveThreads(threads, shards.size()),
                 [&](size_t, size_t begin, size_t end) {
                   for (size_t i = begin; i < end; ++i) {
                     std::string shard_why;
                     if (!shards[i].index->CheckInvariants(&shard_why)) {
                       ok.store(false, std::memory_order_relaxed);
                       if (why != nullptr) {
                         std::lock_guard<std::mutex> l(why_mu);
                         if (!why->empty()) *why += "; ";
                         *why += "shard " + std::to_string(i) + ": " +
                                 shard_why;
                       }
                     }
                   }
                 });
  return ok.load(std::memory_order_relaxed);
}

/// Batches at least this large fan sub-batches out over ParallelShards
/// (when the engine is concurrent); below it, thread hand-off costs more
/// than the per-shard work saves.
constexpr size_t kParallelBatchMin = 128;

/// Shared fan-out skeleton for the batch ops: one pass partitions input
/// positions by shard (preserving input order, so duplicate-key semantics
/// inside a shard match the loop oracle), then `run(shard, positions)`
/// executes each shard's sub-batch — serially, or shard-parallel for big
/// batches. Each shard is touched by exactly one worker, so even
/// non-concurrent inners would be safe here; parallelism is still gated on
/// `parallel` by the callers.
template <typename ShardOfFn, typename RunFn>
void FanOutBatch(size_t nshards, size_t n, bool parallel, uint32_t threads,
                 const ShardOfFn& shard_of, const RunFn& run) {
  std::vector<std::vector<uint32_t>> part(nshards);
  for (auto& p : part) p.reserve(n / nshards + 1);
  for (size_t i = 0; i < n; ++i) {
    part[shard_of(i)].push_back(static_cast<uint32_t>(i));
  }
  if (parallel) {
    ParallelShards(nshards, EffectiveThreads(threads, nshards),
                   [&](size_t, size_t begin, size_t end) {
                     for (size_t s = begin; s < end; ++s) run(s, part[s]);
                   });
  } else {
    for (size_t s = 0; s < nshards; ++s) run(s, part[s]);
  }
}

}  // namespace

// --- ShardedKVIndex --------------------------------------------------------

Status ShardedKVIndex::Make(const std::string& inner,
                            const ShardedOptions& opts,
                            std::unique_ptr<ShardedKVIndex>* out) {
  Status st = ValidateOptions(opts);
  if (!st.ok()) return st;
  std::unique_ptr<ShardedKVIndex> idx(new ShardedKVIndex());
  st = OpenShards(inner, opts, index::MakeFixedIndexChecked, &idx->shards_);
  if (!st.ok()) return st;
  idx->threads_ = opts.threads;
  idx->inner_name_ = inner;
  idx->concurrent_ = true;
  for (const auto& s : idx->shards_) {
    if (!s.index->concurrent()) idx->concurrent_ = false;
  }
  *out = std::move(idx);
  return Status::OK();
}

ShardedKVIndex::~ShardedKVIndex() = default;

size_t ShardedKVIndex::ShardOf(uint64_t key) const {
  return Mix64(key) % shards_.size();
}

bool ShardedKVIndex::Find(uint64_t key, uint64_t* value) {
  return shards_[ShardOf(key)].index->Find(key, value);
}
bool ShardedKVIndex::Insert(uint64_t key, uint64_t value) {
  return shards_[ShardOf(key)].index->Insert(key, value);
}
bool ShardedKVIndex::Update(uint64_t key, uint64_t value) {
  return shards_[ShardOf(key)].index->Update(key, value);
}
bool ShardedKVIndex::Erase(uint64_t key) {
  return shards_[ShardOf(key)].index->Erase(key);
}
bool ShardedKVIndex::Upsert(uint64_t key, uint64_t value) {
  return shards_[ShardOf(key)].index->Upsert(key, value);
}

Status ShardedKVIndex::UpsertChecked(uint64_t key, uint64_t value,
                                     bool* inserted) {
  return shards_[ShardOf(key)].index->UpsertChecked(key, value, inserted);
}

void ShardedKVIndex::MultiGet(const uint64_t* keys, size_t n,
                              uint64_t* values, uint8_t* found) {
  if (shards_.size() == 1) {
    shards_[0].index->MultiGet(keys, n, values, found);
    return;
  }
  const bool parallel = concurrent_ && n >= kParallelBatchMin;
  FanOutBatch(
      shards_.size(), n, parallel, threads_,
      [&](size_t i) { return ShardOf(keys[i]); },
      [&](size_t s, const std::vector<uint32_t>& pos) {
        if (pos.empty()) return;
        std::vector<uint64_t> k(pos.size()), v(pos.size());
        std::vector<uint8_t> f(pos.size());
        for (size_t j = 0; j < pos.size(); ++j) k[j] = keys[pos[j]];
        shards_[s].index->MultiGet(k.data(), pos.size(), v.data(), f.data());
        for (size_t j = 0; j < pos.size(); ++j) {
          found[pos[j]] = f[j];
          if (f[j]) values[pos[j]] = v[j];  // misses leave values untouched
        }
      });
}

void ShardedKVIndex::MultiPut(const uint64_t* keys, const uint64_t* values,
                              size_t n, uint8_t* inserted) {
  if (shards_.size() == 1) {
    shards_[0].index->MultiPut(keys, values, n, inserted);
    return;
  }
  const bool parallel = concurrent_ && n >= kParallelBatchMin;
  FanOutBatch(
      shards_.size(), n, parallel, threads_,
      [&](size_t i) { return ShardOf(keys[i]); },
      [&](size_t s, const std::vector<uint32_t>& pos) {
        if (pos.empty()) return;
        std::vector<uint64_t> k(pos.size()), v(pos.size());
        std::vector<uint8_t> ins(pos.size());
        for (size_t j = 0; j < pos.size(); ++j) {
          k[j] = keys[pos[j]];
          v[j] = values[pos[j]];
        }
        shards_[s].index->MultiPut(k.data(), v.data(), pos.size(),
                                   ins.data());
        if (inserted != nullptr) {
          for (size_t j = 0; j < pos.size(); ++j) inserted[pos[j]] = ins[j];
        }
      });
}

void ShardedKVIndex::MultiUpsert(const uint64_t* keys,
                                 const uint64_t* values, size_t n,
                                 uint8_t* inserted) {
  if (shards_.size() == 1) {
    shards_[0].index->MultiUpsert(keys, values, n, inserted);
    return;
  }
  const bool parallel = concurrent_ && n >= kParallelBatchMin;
  FanOutBatch(
      shards_.size(), n, parallel, threads_,
      [&](size_t i) { return ShardOf(keys[i]); },
      [&](size_t s, const std::vector<uint32_t>& pos) {
        if (pos.empty()) return;
        std::vector<uint64_t> k(pos.size()), v(pos.size());
        std::vector<uint8_t> ins(pos.size());
        for (size_t j = 0; j < pos.size(); ++j) {
          k[j] = keys[pos[j]];
          v[j] = values[pos[j]];
        }
        shards_[s].index->MultiUpsert(k.data(), v.data(), pos.size(),
                                      ins.data());
        if (inserted != nullptr) {
          for (size_t j = 0; j < pos.size(); ++j) inserted[pos[j]] = ins[j];
        }
      });
}

std::unique_ptr<index::KVScanCursor> ShardedKVIndex::OpenScan(uint64_t start,
                                                              size_t limit) {
  std::vector<std::unique_ptr<index::KVScanCursor>> cursors;
  cursors.reserve(shards_.size());
  for (auto& s : shards_) {
    // Each shard can contribute at most `limit` of the merged output.
    cursors.push_back(s.index->OpenScan(start, limit));
  }
  return std::make_unique<MergedKVCursor>(std::move(cursors), limit);
}

size_t ShardedKVIndex::RangeScan(uint64_t start, size_t limit,
                                 const ScanCallback& cb) {
  auto cursor = OpenScan(start, limit);
  size_t n = 0;
  uint64_t k, v;
  while (cursor->Next(&k, &v)) {
    ++n;
    if (!cb(k, v)) break;
  }
  cursor->Close();
  return n;
}

size_t ShardedKVIndex::Size() const {
  size_t n = 0;
  for (const auto& s : shards_) n += s.index->Size();
  return n;
}
uint64_t ShardedKVIndex::DramBytes() const {
  uint64_t n = 0;
  for (const auto& s : shards_) n += s.index->DramBytes();
  return n;
}
uint64_t ShardedKVIndex::ScmBytes() const {
  uint64_t n = 0;
  for (const auto& s : shards_) n += s.index->ScmBytes();
  return n;
}
uint64_t ShardedKVIndex::RecoveryNanos() const {
  uint64_t worst = 0;
  for (const auto& s : shards_) worst = std::max(worst, s.open_nanos);
  return worst;
}

obs::Snapshot ShardedKVIndex::Stats() const {
  obs::Snapshot s = AggregateStats(shards_);
  for (size_t i = 0; i < shards_.size(); ++i) {
    s.gauges["shard." + std::to_string(i) + ".tree.recovery_nanos"] =
        shards_[i].open_nanos;
  }
  s.gauges["index.recovery_nanos"] = RecoveryNanos();
  return s;
}

bool ShardedKVIndex::CheckInvariants(std::string* why) {
  return FanOutInvariants(shards_, threads_, why);
}

// --- ShardedVarIndex -------------------------------------------------------

Status ShardedVarIndex::Make(const std::string& inner,
                             const ShardedOptions& opts,
                             std::unique_ptr<ShardedVarIndex>* out) {
  Status st = ValidateOptions(opts);
  if (!st.ok()) return st;
  std::unique_ptr<ShardedVarIndex> idx(new ShardedVarIndex());
  st = OpenShards(inner, opts, index::MakeVarIndexChecked, &idx->shards_);
  if (!st.ok()) return st;
  idx->threads_ = opts.threads;
  idx->inner_name_ = inner;
  idx->concurrent_ = true;
  for (const auto& s : idx->shards_) {
    if (!s.index->concurrent()) idx->concurrent_ = false;
  }
  *out = std::move(idx);
  return Status::OK();
}

ShardedVarIndex::~ShardedVarIndex() = default;

size_t ShardedVarIndex::ShardOf(std::string_view key) const {
  return HashBytes(key.data(), key.size()) % shards_.size();
}

bool ShardedVarIndex::Find(std::string_view key, uint64_t* value) {
  return shards_[ShardOf(key)].index->Find(key, value);
}
bool ShardedVarIndex::Insert(std::string_view key, uint64_t value) {
  return shards_[ShardOf(key)].index->Insert(key, value);
}
bool ShardedVarIndex::Update(std::string_view key, uint64_t value) {
  return shards_[ShardOf(key)].index->Update(key, value);
}
bool ShardedVarIndex::Erase(std::string_view key) {
  return shards_[ShardOf(key)].index->Erase(key);
}
bool ShardedVarIndex::Upsert(std::string_view key, uint64_t value) {
  return shards_[ShardOf(key)].index->Upsert(key, value);
}

Status ShardedVarIndex::UpsertChecked(std::string_view key, uint64_t value,
                                      bool* inserted) {
  return shards_[ShardOf(key)].index->UpsertChecked(key, value, inserted);
}

void ShardedVarIndex::MultiGet(const std::string_view* keys, size_t n,
                               uint64_t* values, uint8_t* found) {
  if (shards_.size() == 1) {
    shards_[0].index->MultiGet(keys, n, values, found);
    return;
  }
  const bool parallel = concurrent_ && n >= kParallelBatchMin;
  FanOutBatch(
      shards_.size(), n, parallel, threads_,
      [&](size_t i) { return ShardOf(keys[i]); },
      [&](size_t s, const std::vector<uint32_t>& pos) {
        if (pos.empty()) return;
        std::vector<std::string_view> k(pos.size());
        std::vector<uint64_t> v(pos.size());
        std::vector<uint8_t> f(pos.size());
        for (size_t j = 0; j < pos.size(); ++j) k[j] = keys[pos[j]];
        shards_[s].index->MultiGet(k.data(), pos.size(), v.data(), f.data());
        for (size_t j = 0; j < pos.size(); ++j) {
          found[pos[j]] = f[j];
          if (f[j]) values[pos[j]] = v[j];
        }
      });
}

void ShardedVarIndex::MultiPut(const std::string_view* keys,
                               const uint64_t* values, size_t n,
                               uint8_t* inserted) {
  if (shards_.size() == 1) {
    shards_[0].index->MultiPut(keys, values, n, inserted);
    return;
  }
  const bool parallel = concurrent_ && n >= kParallelBatchMin;
  FanOutBatch(
      shards_.size(), n, parallel, threads_,
      [&](size_t i) { return ShardOf(keys[i]); },
      [&](size_t s, const std::vector<uint32_t>& pos) {
        if (pos.empty()) return;
        std::vector<std::string_view> k(pos.size());
        std::vector<uint64_t> v(pos.size());
        std::vector<uint8_t> ins(pos.size());
        for (size_t j = 0; j < pos.size(); ++j) {
          k[j] = keys[pos[j]];
          v[j] = values[pos[j]];
        }
        shards_[s].index->MultiPut(k.data(), v.data(), pos.size(),
                                   ins.data());
        if (inserted != nullptr) {
          for (size_t j = 0; j < pos.size(); ++j) inserted[pos[j]] = ins[j];
        }
      });
}

void ShardedVarIndex::MultiUpsert(const std::string_view* keys,
                                  const uint64_t* values, size_t n,
                                  uint8_t* inserted) {
  if (shards_.size() == 1) {
    shards_[0].index->MultiUpsert(keys, values, n, inserted);
    return;
  }
  const bool parallel = concurrent_ && n >= kParallelBatchMin;
  FanOutBatch(
      shards_.size(), n, parallel, threads_,
      [&](size_t i) { return ShardOf(keys[i]); },
      [&](size_t s, const std::vector<uint32_t>& pos) {
        if (pos.empty()) return;
        std::vector<std::string_view> k(pos.size());
        std::vector<uint64_t> v(pos.size());
        std::vector<uint8_t> ins(pos.size());
        for (size_t j = 0; j < pos.size(); ++j) {
          k[j] = keys[pos[j]];
          v[j] = values[pos[j]];
        }
        shards_[s].index->MultiUpsert(k.data(), v.data(), pos.size(),
                                      ins.data());
        if (inserted != nullptr) {
          for (size_t j = 0; j < pos.size(); ++j) inserted[pos[j]] = ins[j];
        }
      });
}

std::unique_ptr<index::VarScanCursor> ShardedVarIndex::OpenScan(
    std::string_view start, size_t limit) {
  std::vector<std::unique_ptr<index::VarScanCursor>> cursors;
  cursors.reserve(shards_.size());
  for (auto& s : shards_) {
    cursors.push_back(s.index->OpenScan(start, limit));
  }
  return std::make_unique<MergedVarCursor>(std::move(cursors), limit);
}

size_t ShardedVarIndex::RangeScan(std::string_view start, size_t limit,
                                  const ScanCallback& cb) {
  auto cursor = OpenScan(start, limit);
  size_t n = 0;
  std::string k;
  uint64_t v;
  while (cursor->Next(&k, &v)) {
    ++n;
    if (!cb(k, v)) break;
  }
  cursor->Close();
  return n;
}

size_t ShardedVarIndex::Size() const {
  size_t n = 0;
  for (const auto& s : shards_) n += s.index->Size();
  return n;
}
uint64_t ShardedVarIndex::DramBytes() const {
  uint64_t n = 0;
  for (const auto& s : shards_) n += s.index->DramBytes();
  return n;
}
uint64_t ShardedVarIndex::ScmBytes() const {
  uint64_t n = 0;
  for (const auto& s : shards_) n += s.index->ScmBytes();
  return n;
}
uint64_t ShardedVarIndex::RecoveryNanos() const {
  uint64_t worst = 0;
  for (const auto& s : shards_) worst = std::max(worst, s.open_nanos);
  return worst;
}

obs::Snapshot ShardedVarIndex::Stats() const {
  obs::Snapshot s = AggregateStats(shards_);
  for (size_t i = 0; i < shards_.size(); ++i) {
    s.gauges["shard." + std::to_string(i) + ".tree.recovery_nanos"] =
        shards_[i].open_nanos;
  }
  s.gauges["index.recovery_nanos"] = RecoveryNanos();
  return s;
}

bool ShardedVarIndex::CheckInvariants(std::string* why) {
  return FanOutInvariants(shards_, threads_, why);
}

// --- Spec parsing ----------------------------------------------------------

bool ParseShardedSpec(const std::string& spec, std::string* inner,
                      size_t* shards, Status* error) {
  constexpr const char kPrefix[] = "sharded(";
  if (spec.rfind(kPrefix, 0) != 0) return false;
  *error = Status::OK();
  if (spec.back() != ')') {
    *error = Status::InvalidArgument("sharded spec missing ')': " + spec);
    return true;
  }
  std::string body = spec.substr(sizeof(kPrefix) - 1,
                                 spec.size() - sizeof(kPrefix));
  size_t comma = body.rfind(',');
  if (comma == std::string::npos || comma == 0) {
    *error = Status::InvalidArgument(
        "sharded spec must be sharded(<inner>,<N>): " + spec);
    return true;
  }
  *inner = body.substr(0, comma);
  const std::string count = body.substr(comma + 1);
  char* endp = nullptr;
  unsigned long n = std::strtoul(count.c_str(), &endp, 10);
  if (count.empty() || endp == nullptr || *endp != '\0' || n < 1 || n > 32) {
    *error = Status::InvalidArgument(
        "sharded spec shard count must be an integer in [1, 32]: " + spec);
    return true;
  }
  *shards = static_cast<size_t>(n);
  return true;
}

Status MakeVarIndexFromSpec(const std::string& spec,
                            const ShardedOptions& opts,
                            std::unique_ptr<index::VarIndex>* out) {
  std::string inner = spec;
  ShardedOptions effective = opts;
  Status parse_error;
  if (ParseShardedSpec(spec, &inner, &effective.shards, &parse_error)) {
    if (!parse_error.ok()) return parse_error;
  }
  std::unique_ptr<ShardedVarIndex> sharded;
  Status st = ShardedVarIndex::Make(inner, effective, &sharded);
  if (!st.ok()) return st;
  *out = std::move(sharded);
  return Status::OK();
}

Status MakeFixedIndexFromSpec(const std::string& spec,
                              const ShardedOptions& opts,
                              std::unique_ptr<index::KVIndex>* out) {
  std::string inner = spec;
  ShardedOptions effective = opts;
  Status parse_error;
  if (ParseShardedSpec(spec, &inner, &effective.shards, &parse_error)) {
    if (!parse_error.ok()) return parse_error;
  }
  std::unique_ptr<ShardedKVIndex> sharded;
  Status st = ShardedKVIndex::Make(inner, effective, &sharded);
  if (!st.ok()) return st;
  *out = std::move(sharded);
  return Status::OK();
}

}  // namespace engine
}  // namespace fptree
