file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_ops_var.dir/bench_fig7_ops_var.cc.o"
  "CMakeFiles/bench_fig7_ops_var.dir/bench_fig7_ops_var.cc.o.d"
  "bench_fig7_ops_var"
  "bench_fig7_ops_var.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_ops_var.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
