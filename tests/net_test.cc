// Network serving layer (DESIGN.md §9): codec round-trips, server
// integration over real sockets — pipelining, malformed-frame handling,
// write backpressure against a non-reading peer, and graceful drain
// (BeginDrain == the SIGTERM path) with zero lost acked writes.

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <thread>

#include "index/kv_index.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "scm/latency.h"
#include "scm/pool.h"
#include "util/threading.h"
#include "util/timer.h"

namespace fptree {
namespace net {
namespace {

using scm::Pool;

std::string TestPath(const std::string& name) {
  return "/tmp/fptree_test_" + std::to_string(::getpid()) + "_" + name;
}

// ---------------- protocol codec ---------------------------------------------

TEST(ProtocolTest, RequestRoundTrip) {
  std::string buf;
  EncodePut(&buf, "alpha", 7);
  EncodeGet(&buf, "beta");
  EncodeDel(&buf, "gamma");
  EncodeScan(&buf, "delta", 32);

  Request req;
  size_t consumed = 0, off = 0;
  ASSERT_EQ(DecodeRequest(buf.data(), buf.size(), &req, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(req.op, Op::kPut);
  EXPECT_EQ(req.key, "alpha");
  EXPECT_EQ(req.value, 7u);
  off += consumed;
  ASSERT_EQ(DecodeRequest(buf.data() + off, buf.size() - off, &req, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(req.op, Op::kGet);
  EXPECT_EQ(req.key, "beta");
  off += consumed;
  ASSERT_EQ(DecodeRequest(buf.data() + off, buf.size() - off, &req, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(req.op, Op::kDel);
  off += consumed;
  ASSERT_EQ(DecodeRequest(buf.data() + off, buf.size() - off, &req, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(req.op, Op::kScan);
  EXPECT_EQ(req.key, "delta");
  EXPECT_EQ(req.scan_limit, 32u);
  off += consumed;
  EXPECT_EQ(off, buf.size());
}

TEST(ProtocolTest, PartialFramesNeedMore) {
  std::string buf;
  EncodePut(&buf, "key", 1);
  Request req;
  size_t consumed = 0;
  for (size_t len = 0; len < buf.size(); ++len) {
    EXPECT_EQ(DecodeRequest(buf.data(), len, &req, &consumed),
              DecodeStatus::kNeedMore)
        << len;
  }
  EXPECT_EQ(DecodeRequest(buf.data(), buf.size(), &req, &consumed),
            DecodeStatus::kOk);
}

TEST(ProtocolTest, MalformedFramesError) {
  Request req;
  size_t consumed = 0;
  // Oversized body.
  std::string buf;
  PutU32(&buf, static_cast<uint32_t>(kMaxFrameBody + 1));
  buf.append(8, 'x');
  EXPECT_EQ(DecodeRequest(buf.data(), buf.size(), &req, &consumed),
            DecodeStatus::kError);
  // Unknown opcode.
  buf.clear();
  PutU32(&buf, 1 + 4);
  buf.push_back(42);
  PutU32(&buf, 0);
  EXPECT_EQ(DecodeRequest(buf.data(), buf.size(), &req, &consumed),
            DecodeStatus::kError);
  // Key length overruns the body.
  buf.clear();
  PutU32(&buf, 1 + 4);
  buf.push_back(static_cast<char>(Op::kGet));
  PutU32(&buf, 100);
  EXPECT_EQ(DecodeRequest(buf.data(), buf.size(), &req, &consumed),
            DecodeStatus::kError);
}

TEST(ProtocolTest, ResponseRoundTrip) {
  std::string buf;
  EncodeStatusResponse(&buf, RespStatus::kNotFound);
  EncodeValueResponse(&buf, 99);
  std::vector<std::pair<std::string, uint64_t>> rows = {{"a", 1}, {"bb", 2}};
  EncodeScanResponse(&buf, rows);
  EncodeScanResponse(&buf, {});

  Response resp;
  size_t consumed = 0, off = 0;
  ASSERT_EQ(DecodeResponse(buf.data(), buf.size(), &resp, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(resp.status, RespStatus::kNotFound);
  off += consumed;
  ASSERT_EQ(
      DecodeResponse(buf.data() + off, buf.size() - off, &resp, &consumed),
      DecodeStatus::kOk);
  EXPECT_EQ(resp.status, RespStatus::kOk);
  EXPECT_EQ(resp.value, 99u);
  off += consumed;
  ASSERT_EQ(
      DecodeResponse(buf.data() + off, buf.size() - off, &resp, &consumed),
      DecodeStatus::kOk);
  ASSERT_EQ(resp.scan.size(), 2u);
  EXPECT_EQ(resp.scan[0].first, "a");
  EXPECT_EQ(resp.scan[1].second, 2u);
  off += consumed;
  ASSERT_EQ(
      DecodeResponse(buf.data() + off, buf.size() - off, &resp, &consumed),
      DecodeStatus::kOk);
  EXPECT_TRUE(resp.scan.empty());
  EXPECT_EQ(off + consumed, buf.size());
}

// ---------------- server integration -----------------------------------------

class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scm::LatencyModel::Disable();
    path_ = TestPath("net");
    Pool::Destroy(path_).ok();
    Pool::Options opts{.size = 256u << 20, .randomize_base = true};
    ASSERT_TRUE(Pool::Create(path_, 1, opts, &pool_).ok());
    index_ = index::MakeVarIndex("fptree-c-var", pool_.get(), true);
    ASSERT_NE(index_, nullptr);
  }
  void TearDown() override {
    server_.reset();
    index_.reset();
    pool_.reset();
    Pool::Destroy(path_).ok();
  }

  void StartServer(Server::Options opts = {}) {
    // Tests shut down with clients still connected; don't sit out the full
    // production grace period waiting for their EOF.
    opts.drain_grace_ms = 500;
    server_ = std::make_unique<Server>(index_.get(), opts);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  std::string path_;
  std::unique_ptr<Pool> pool_;
  std::unique_ptr<index::VarIndex> index_;
  std::unique_ptr<Server> server_;
};

TEST_F(NetServerTest, BasicOpsOverSocket) {
  StartServer();
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(c.Put("user:1", 41).ok());
  ASSERT_TRUE(c.Put("user:1", 42).ok());  // upsert overwrites
  uint64_t v = 0;
  bool found = false;
  ASSERT_TRUE(c.Get("user:1", &v, &found).ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(v, 42u);
  ASSERT_TRUE(c.Get("user:2", &v, &found).ok());
  EXPECT_FALSE(found);
  ASSERT_TRUE(c.Del("user:1", &found).ok());
  EXPECT_TRUE(found);
  ASSERT_TRUE(c.Del("user:1", &found).ok());
  EXPECT_FALSE(found);
  server_->Shutdown();
}

TEST_F(NetServerTest, ScanOverSocketIsSortedFromStart) {
  StartServer();
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  for (int i = 0; i < 100; ++i) {
    char key[8];
    std::snprintf(key, sizeof(key), "k%03d", i);
    ASSERT_TRUE(c.Put(key, i).ok());
  }
  std::vector<std::pair<std::string, uint64_t>> rows;
  ASSERT_TRUE(c.Scan("k050", 10, &rows).ok());
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_EQ(rows[0].first, "k050");
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].first, rows[i].first);
  }
  server_->Shutdown();
}

TEST_F(NetServerTest, PipelinedBatchKeepsRequestOrder) {
  StartServer();
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  // One burst: 500 PUTs then 500 GETs, all written before any read.
  constexpr int kN = 500;
  for (int i = 0; i < kN; ++i) {
    c.QueuePut("p" + std::to_string(i), i * 3);
  }
  for (int i = 0; i < kN; ++i) {
    c.QueueGet("p" + std::to_string(i));
  }
  ASSERT_TRUE(c.Flush().ok());
  Response resp;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(c.ReadResponse(&resp).ok());
    EXPECT_EQ(resp.status, RespStatus::kOk) << "PUT " << i;
  }
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(c.ReadResponse(&resp).ok());
    ASSERT_EQ(resp.status, RespStatus::kOk) << "GET " << i;
    // In-order responses: the i-th GET response carries the i-th value.
    EXPECT_EQ(resp.value, static_cast<uint64_t>(i) * 3);
  }
  EXPECT_EQ(c.inflight(), 0u);
  server_->Shutdown();
  EXPECT_GE(server_->acked_ops(), 2u * kN);
}

TEST_F(NetServerTest, ManyConcurrentPipelinedConnections) {
  Server::Options opts;
  opts.io_threads = 4;
  StartServer(opts);
  constexpr uint32_t kConns = 64;
  constexpr int kOpsPerConn = 200;
  std::atomic<uint32_t> ok{0};
  ThreadGroup tg;
  tg.Spawn(kConns, [&](uint32_t id) {
    Client c;
    if (!c.Connect("127.0.0.1", server_->port()).ok()) return;
    for (int i = 0; i < kOpsPerConn; ++i) {
      c.QueuePut("c" + std::to_string(id) + "-" + std::to_string(i), id);
    }
    if (!c.Flush().ok()) return;
    Response resp;
    for (int i = 0; i < kOpsPerConn; ++i) {
      if (!c.ReadResponse(&resp).ok()) return;
      if (resp.status != RespStatus::kOk) return;
    }
    ok.fetch_add(1);
  });
  tg.Join();
  EXPECT_EQ(ok.load(), kConns);
  EXPECT_EQ(index_->Size(), kConns * kOpsPerConn);
  server_->Shutdown();
}

TEST_F(NetServerTest, MalformedFrameGetsBadRequestThenClose) {
  StartServer();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string garbage;
  PutU32(&garbage, 1 + 4);
  garbage.push_back(99);  // unknown opcode
  PutU32(&garbage, 0);
  ASSERT_EQ(::write(fd, garbage.data(), garbage.size()),
            static_cast<ssize_t>(garbage.size()));
  // Expect exactly one BAD_REQUEST response, then EOF.
  std::string got;
  char buf[64];
  for (;;) {
    ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r <= 0) break;
    got.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  Response resp;
  size_t consumed = 0;
  ASSERT_EQ(DecodeResponse(got.data(), got.size(), &resp, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(resp.status, RespStatus::kBadRequest);
  EXPECT_EQ(consumed, got.size());
  server_->Shutdown();
}

TEST_F(NetServerTest, BackpressureBoundsOutputQueue) {
  Server::Options opts;
  opts.io_threads = 1;
  opts.max_output_bytes = 64 * 1024;
  opts.resume_output_bytes = 16 * 1024;
  // Cap the kernel send buffer so the userspace queue bound is what bites:
  // with autotuning the kernel can absorb several MB of responses and the
  // flooder below would never stall (seen under the sanitizers, where the
  // slowed server trickles into an always-draining kernel buffer).
  opts.sndbuf_bytes = 32 * 1024;
  StartServer(opts);
  Client setup;
  ASSERT_TRUE(setup.Connect("127.0.0.1", server_->port()).ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(setup.Put("bp" + std::to_string(1000 + i), i).ok());
  }

  // A client that fires thousands of SCANs (big responses) without reading:
  // the server must park the connection at the output bound instead of
  // buffering the whole response stream.
  Client flooder;
  ASSERT_TRUE(flooder.Connect("127.0.0.1", server_->port()).ok());
  constexpr int kScans = 1200;
  for (int i = 0; i < kScans; ++i) {
    flooder.QueueScan("bp", 200);
  }
  ASSERT_TRUE(flooder.Flush().ok());
  // Let the server chew while the flooder reads nothing.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  uint64_t stalls = obs::MetricsRegistry::Global()
                        .GetCounter("net.backpressure_stalls")
                        ->value();
  EXPECT_GT(stalls, 0u) << "output queue never hit the bound";
  // Now drain everything; every response must still arrive, in order.
  Response resp;
  for (int i = 0; i < kScans; ++i) {
    ASSERT_TRUE(flooder.ReadResponse(&resp).ok()) << i;
    ASSERT_EQ(resp.status, RespStatus::kOk);
    ASSERT_EQ(resp.scan.size(), 200u) << i;
  }
  EXPECT_EQ(flooder.inflight(), 0u);
  server_->Shutdown();
}

TEST_F(NetServerTest, DrainFlushesAckedWritesAndRefusesNewConnections) {
  Server::Options opts;
  opts.io_threads = 2;
  StartServer(opts);

  // Writers keep pipelining PUTs; every response they manage to read is an
  // acked write that must survive the drain.
  constexpr uint32_t kWriters = 4;
  std::atomic<uint64_t> acked_puts{0};
  std::atomic<bool> begin_drain{false};
  ThreadGroup tg;
  tg.Spawn(kWriters, [&](uint32_t id) {
    Client c;
    if (!c.Connect("127.0.0.1", server_->port()).ok()) return;
    Response resp;
    for (uint64_t i = 0;; ++i) {
      c.QueuePut("d" + std::to_string(id) + "-" + std::to_string(i), i);
      if (!c.Flush().ok()) break;
      if (!c.ReadResponse(&resp).ok()) break;
      if (resp.status != RespStatus::kOk) break;
      acked_puts.fetch_add(1);
      if (i == 300 && id == 0) begin_drain.store(true);
    }
  });
  while (!begin_drain.load()) std::this_thread::yield();
  server_->BeginDrain();  // what the SIGTERM handler runs
  tg.Join();
  server_->Join();

  // Drained server refuses new connections.
  Client late;
  Status s = late.Connect("127.0.0.1", server_->port());
  if (s.ok()) {
    // Connect may win a race with listener teardown; the socket still
    // must be dead.
    EXPECT_FALSE(late.Put("late", 1).ok());
  }

  // Zero lost acked writes: every PUT whose response a client read is in
  // the index.
  EXPECT_GT(acked_puts.load(), 300u);
  EXPECT_GE(server_->acked_ops(), acked_puts.load());
  uint64_t resident = 0;
  for (uint32_t id = 0; id < kWriters; ++id) {
    for (uint64_t i = 0;; ++i) {
      uint64_t v;
      if (!index_->Find("d" + std::to_string(id) + "-" + std::to_string(i),
                        &v)) {
        break;
      }
      ++resident;
    }
  }
  EXPECT_GE(resident, acked_puts.load());
}

TEST_F(NetServerTest, ConnectionGaugeTracksLiveConnections) {
  StartServer();
  EXPECT_EQ(server_->connections(), 0u);
  Client a, b;
  ASSERT_TRUE(a.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(b.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(a.Put("x", 1).ok());
  ASSERT_TRUE(b.Put("y", 2).ok());
  EXPECT_EQ(server_->connections(), 2u);
  a.Close();
  Stopwatch sw;
  while (server_->connections() != 1u && sw.ElapsedSeconds() < 5.0) {
    std::this_thread::yield();
  }
  EXPECT_EQ(server_->connections(), 1u);
  server_->Shutdown();
  EXPECT_EQ(server_->connections(), 0u);
}

}  // namespace
}  // namespace net
}  // namespace fptree
