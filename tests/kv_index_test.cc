// index/: the by-name factories, adapter semantics (global-lock wrapping of
// single-threaded trees), and cross-implementation behavioural parity — a
// property-style sweep running the same randomized trace through every
// index kind and requiring identical results.

#include "index/kv_index.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <map>

#include "scm/latency.h"
#include "util/random.h"
#include "util/threading.h"

namespace fptree {
namespace index {
namespace {

using scm::Pool;

std::string TestPath(const std::string& name) {
  return "/tmp/fptree_test_" + std::to_string(::getpid()) + "_" + name;
}

class FixedIndexTest
    : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {
 protected:
  void SetUp() override {
    scm::LatencyModel::Disable();
    path_ = TestPath("index");
    Pool::Destroy(path_).ok();
    Pool::Options opts{.size = 256u << 20, .randomize_base = true};
    ASSERT_TRUE(Pool::Create(path_, 1, opts, &pool_).ok());
    index_ = MakeFixedIndex(std::get<0>(GetParam()), pool_.get(),
                            /*locked=*/true);
    ASSERT_NE(index_, nullptr);
  }
  void TearDown() override {
    index_.reset();
    pool_.reset();
    Pool::Destroy(path_).ok();
  }

  std::string path_;
  std::unique_ptr<Pool> pool_;
  std::unique_ptr<KVIndex> index_;
};

TEST_P(FixedIndexTest, RandomTraceMatchesStdMap) {
  uint64_t seed = std::get<1>(GetParam());
  std::map<uint64_t, uint64_t> model;
  Random64 rng(seed);
  for (int i = 0; i < 8000; ++i) {
    uint64_t key = rng.Uniform(400);
    switch (rng.Uniform(4)) {
      case 0:
        EXPECT_EQ(index_->Insert(key, i), model.emplace(key, i).second);
        break;
      case 1: {
        bool r = index_->Update(key, i);
        EXPECT_EQ(r, model.count(key) == 1);
        if (r) model[key] = i;
        break;
      }
      case 2:
        EXPECT_EQ(index_->Erase(key), model.erase(key) == 1);
        break;
      default: {
        uint64_t v;
        bool r = index_->Find(key, &v);
        auto it = model.find(key);
        ASSERT_EQ(r, it != model.end());
        if (r) {
          EXPECT_EQ(v, it->second);
        }
      }
    }
  }
  EXPECT_EQ(index_->Size(), model.size());
}

TEST_P(FixedIndexTest, ConcurrentAccessThroughAdapterIsSafe) {
  // The locked adapter must make even single-threaded trees safe to share.
  constexpr uint32_t kThreads = 4;
  constexpr uint64_t kPerThread = 1500;
  ThreadGroup tg;
  tg.Spawn(kThreads, [&](uint32_t id) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      uint64_t key = id * kPerThread + i;
      ASSERT_TRUE(index_->Insert(key, key));
      uint64_t v;
      ASSERT_TRUE(index_->Find(key, &v));
    }
  });
  tg.Join();
  EXPECT_EQ(index_->Size(), kThreads * kPerThread);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSeeds, FixedIndexTest,
    ::testing::Combine(::testing::Values("fptree", "fptree-nogroups",
                                         "ptree", "wbtree", "nvtree", "stx",
                                         "fptree-c", "fptree-c-lock",
                                         "nvtree-c"),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      std::string n = std::get<0>(info.param);
      for (auto& c : n) {
        if (c == '-') c = '_';
      }
      return n + "_seed" + std::to_string(std::get<1>(info.param));
    });

// --- Registry sweep: every registered name must construct and round-trip
// through the full v2 interface (Insert/Find/Update/Erase/RangeScan/Stats).

std::string PaddedKey(uint64_t i) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llu",
                static_cast<unsigned long long>(i));
  return std::string(buf, 16);
}

TEST(IndexRegistry, ListsAreNonEmptyAndSorted) {
  auto fixed = ListFixedIndexNames();
  auto var = ListVarIndexNames();
  EXPECT_GE(fixed.size(), 9u);
  EXPECT_GE(var.size(), 5u);
  EXPECT_TRUE(std::is_sorted(fixed.begin(), fixed.end()));
  EXPECT_TRUE(std::is_sorted(var.begin(), var.end()));
}

TEST(IndexRegistry, EveryFixedNameRoundTrips) {
  scm::LatencyModel::Disable();
  std::string path = TestPath("regfixed");
  for (const std::string& name : ListFixedIndexNames()) {
    SCOPED_TRACE(name);
    Pool::Destroy(path).ok();
    std::unique_ptr<Pool> pool;
    Pool::Options opts{.size = 256u << 20, .randomize_base = true};
    ASSERT_TRUE(Pool::Create(path, 1, opts, &pool).ok());
    auto idx = MakeFixedIndex(name, pool.get(), /*locked=*/true);
    ASSERT_NE(idx, nullptr);
    EXPECT_TRUE(idx->concurrent());  // locked adapters report thread-safety

    for (uint64_t k = 0; k < 200; ++k) ASSERT_TRUE(idx->Insert(k * 3, k));
    uint64_t v = 0;
    ASSERT_TRUE(idx->Find(300, &v));
    EXPECT_EQ(v, 100u);
    ASSERT_TRUE(idx->Update(300, 7));
    ASSERT_TRUE(idx->Find(300, &v));
    EXPECT_EQ(v, 7u);
    ASSERT_TRUE(idx->Erase(300));
    EXPECT_FALSE(idx->Find(300, &v));
    EXPECT_EQ(idx->Size(), 199u);

    // Ordered scan of ten keys from 30: 30, 33, ..., 57.
    std::vector<uint64_t> keys;
    size_t n = idx->RangeScan(30, 10, [&](uint64_t key, uint64_t) {
      keys.push_back(key);
      return true;
    });
    ASSERT_EQ(n, 10u);
    for (size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(keys[i], 30 + 3 * i);
    }

    obs::Snapshot stats = idx->Stats();
    EXPECT_FALSE(stats.gauges.empty());
    EXPECT_EQ(stats.gauges["index.size"], idx->Size());

    idx.reset();
    pool.reset();
  }
  Pool::Destroy(path).ok();
}

TEST(IndexRegistry, EveryVarNameRoundTrips) {
  scm::LatencyModel::Disable();
  std::string path = TestPath("regvar");
  for (const std::string& name : ListVarIndexNames()) {
    SCOPED_TRACE(name);
    Pool::Destroy(path).ok();
    std::unique_ptr<Pool> pool;
    Pool::Options opts{.size = 256u << 20, .randomize_base = true};
    ASSERT_TRUE(Pool::Create(path, 1, opts, &pool).ok());
    auto idx = MakeVarIndex(name, pool.get(), /*locked=*/true);
    ASSERT_NE(idx, nullptr);
    EXPECT_TRUE(idx->concurrent());

    for (uint64_t k = 0; k < 200; ++k) {
      ASSERT_TRUE(idx->Insert(PaddedKey(k * 3), k));
    }
    uint64_t v = 0;
    ASSERT_TRUE(idx->Find(PaddedKey(300), &v));
    EXPECT_EQ(v, 100u);
    ASSERT_TRUE(idx->Update(PaddedKey(300), 7));
    ASSERT_TRUE(idx->Find(PaddedKey(300), &v));
    EXPECT_EQ(v, 7u);
    ASSERT_TRUE(idx->Erase(PaddedKey(300)));
    EXPECT_FALSE(idx->Find(PaddedKey(300), &v));
    EXPECT_EQ(idx->Size(), 199u);

    std::vector<std::string> keys;
    size_t n = idx->RangeScan(PaddedKey(30), 10,
                              [&](std::string_view key, uint64_t) {
                                keys.emplace_back(key);
                                return true;
                              });
    if (name == "hashmap") {
      EXPECT_EQ(n, 0u);  // unordered index: scans unsupported by contract
    } else {
      ASSERT_EQ(n, 10u);
      for (size_t i = 0; i < keys.size(); ++i) {
        EXPECT_EQ(keys[i], PaddedKey(30 + 3 * i));
      }
    }

    obs::Snapshot stats = idx->Stats();
    EXPECT_FALSE(stats.gauges.empty());
    EXPECT_EQ(stats.gauges["index.size"], idx->Size());

    idx.reset();
    pool.reset();
  }
  Pool::Destroy(path).ok();
}

TEST(IndexRegistry, UnlockedSingleThreadedTreeIsNotConcurrent) {
  scm::LatencyModel::Disable();
  std::string path = TestPath("unlocked");
  Pool::Destroy(path).ok();
  std::unique_ptr<Pool> pool;
  Pool::Options opts{.size = 128u << 20, .randomize_base = true};
  ASSERT_TRUE(Pool::Create(path, 1, opts, &pool).ok());
  auto idx = MakeFixedIndex("fptree", pool.get(), /*locked=*/false);
  ASSERT_NE(idx, nullptr);
  EXPECT_FALSE(idx->concurrent());
  auto cidx = MakeFixedIndex("fptree-c", pool.get(), /*locked=*/false);
  ASSERT_NE(cidx, nullptr);
  EXPECT_TRUE(cidx->concurrent());  // internally concurrent regardless
  cidx.reset();
  idx.reset();
  pool.reset();
  Pool::Destroy(path).ok();
}

TEST(IndexRegistry, ScanCallbackCanStopEarly) {
  scm::LatencyModel::Disable();
  std::string path = TestPath("scanstop");
  Pool::Destroy(path).ok();
  std::unique_ptr<Pool> pool;
  Pool::Options opts{.size = 128u << 20, .randomize_base = true};
  ASSERT_TRUE(Pool::Create(path, 1, opts, &pool).ok());
  auto idx = MakeFixedIndex("fptree", pool.get(), /*locked=*/true);
  ASSERT_NE(idx, nullptr);
  for (uint64_t k = 0; k < 100; ++k) ASSERT_TRUE(idx->Insert(k, k));
  size_t seen = 0;
  idx->RangeScan(0, 100, [&](uint64_t, uint64_t) {
    ++seen;
    return seen < 5;  // stop after five
  });
  EXPECT_EQ(seen, 5u);
  idx.reset();
  pool.reset();
  Pool::Destroy(path).ok();
}

TEST(IndexFactory, UnknownNamesReturnNull) {
  EXPECT_EQ(MakeFixedIndex("btree9000", nullptr), nullptr);
  EXPECT_EQ(MakeVarIndex("btree9000", nullptr), nullptr);
}

TEST(IndexFactory, VarKindsConstruct) {
  scm::LatencyModel::Disable();
  std::string path = TestPath("varidx");
  for (const char* kind :
       {"fptree-var", "ptree-var", "stx-var", "fptree-c-var", "hashmap"}) {
    Pool::Destroy(path).ok();
    std::unique_ptr<Pool> pool;
    Pool::Options opts{.size = 128u << 20, .randomize_base = true};
    ASSERT_TRUE(Pool::Create(path, 1, opts, &pool).ok());
    auto idx = MakeVarIndex(kind, pool.get(), true);
    ASSERT_NE(idx, nullptr) << kind;
    EXPECT_TRUE(idx->Insert("hello", 1)) << kind;
    uint64_t v;
    EXPECT_TRUE(idx->Find("hello", &v)) << kind;
    EXPECT_EQ(v, 1u);
    EXPECT_TRUE(idx->Erase("hello")) << kind;
    idx.reset();
    pool.reset();
  }
  Pool::Destroy(path).ok();
}

}  // namespace
}  // namespace index
}  // namespace fptree
