file(REMOVE_RECURSE
  "CMakeFiles/fptree_var_test.dir/fptree_var_test.cc.o"
  "CMakeFiles/fptree_var_test.dir/fptree_var_test.cc.o.d"
  "fptree_var_test"
  "fptree_var_test.pdb"
  "fptree_var_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fptree_var_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
