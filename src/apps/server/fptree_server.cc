// Copyright (c) FPTree reproduction authors.
//
// fptree_server: network front-end for any registered var-key index
// (DESIGN.md §9). Binds a TCP port, serves the length-prefixed GET/PUT/
// DEL/SCAN protocol from src/net/protocol.h over a persistent pool, and
// drains gracefully on SIGTERM/SIGINT — in-flight requests are answered
// and flushed, then the process prints a METRICS_JSON line and exits.
//
//   fptree_server --port=7070 --tree=fptree-c-var --threads=4 \
//                 --pool=/tmp/fptree_server.pool --pool-mb=1024
//
// Pair with bench_net_throughput as the load generator.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "index/kv_index.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "scm/latency.h"
#include "scm/pool.h"

namespace fptree {
namespace {

struct ServerFlags {
  uint16_t port = 7070;
  std::string host = "127.0.0.1";
  std::string tree = "fptree-c-var";
  uint32_t threads = 2;
  std::string pool_path = "/tmp/fptree_server.pool";
  uint64_t pool_mb = 1024;
  uint32_t sample = 64;
  uint32_t drain_grace_ms = 5000;

  static ServerFlags Parse(int argc, char** argv) {
    ServerFlags f;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--port=", 7) == 0) f.port = static_cast<uint16_t>(std::strtoul(a + 7, nullptr, 10));
      if (std::strncmp(a, "--host=", 7) == 0) f.host = a + 7;
      if (std::strncmp(a, "--tree=", 7) == 0) f.tree = a + 7;
      if (std::strncmp(a, "--threads=", 10) == 0) f.threads = std::strtoul(a + 10, nullptr, 10);
      if (std::strncmp(a, "--pool=", 7) == 0) f.pool_path = a + 7;
      if (std::strncmp(a, "--pool-mb=", 10) == 0) f.pool_mb = std::strtoull(a + 10, nullptr, 10);
      if (std::strncmp(a, "--sample=", 9) == 0) f.sample = std::strtoul(a + 9, nullptr, 10);
      if (std::strncmp(a, "--drain-grace-ms=", 17) == 0) f.drain_grace_ms = std::strtoul(a + 17, nullptr, 10);
      if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
        std::printf(
            "usage: fptree_server [--port=N] [--host=A] [--tree=NAME]\n"
            "                     [--threads=N] [--pool=PATH] [--pool-mb=N]\n"
            "                     [--sample=N] [--drain-grace-ms=N]\n"
            "registered var-key trees:");
        for (const std::string& n : index::ListVarIndexNames()) {
          std::printf(" %s", n.c_str());
        }
        std::printf("\n");
        std::exit(0);
      }
    }
    return f;
  }
};

int Run(int argc, char** argv) {
  ServerFlags flags = ServerFlags::Parse(argc, argv);
  obs::SetSampleInterval(flags.sample);
  scm::LatencyModel::Disable();  // serve at native speed

  std::unique_ptr<scm::Pool> pool;
  bool created = false;
  scm::Pool::Options popts{.size = flags.pool_mb << 20,
                           .randomize_base = false};
  Status s = scm::Pool::OpenOrCreate(flags.pool_path, 1, popts, &pool,
                                     &created);
  if (!s.ok()) {
    std::fprintf(stderr, "pool open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Non-concurrent trees get the registry's global lock so the IO workers
  // can share them, mirroring the paper's memcached arrangement.
  auto index = index::MakeVarIndex(flags.tree, pool.get(), /*locked=*/true);
  if (index == nullptr) {
    std::fprintf(stderr, "unknown --tree=%s; registered:", flags.tree.c_str());
    for (const std::string& n : index::ListVarIndexNames()) {
      std::fprintf(stderr, " %s", n.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  net::Server::Options sopts;
  sopts.port = flags.port;
  sopts.host = flags.host;
  sopts.io_threads = flags.threads;
  sopts.drain_grace_ms = flags.drain_grace_ms;
  net::Server server(index.get(), sopts);
  s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  net::InstallDrainOnSignal(&server, SIGTERM);
  net::InstallDrainOnSignal(&server, SIGINT);

  std::printf("fptree_server listening on %s:%u tree=%s threads=%u pool=%s%s\n",
              flags.host.c_str(), server.port(), flags.tree.c_str(),
              flags.threads, flags.pool_path.c_str(),
              created ? " (created)" : " (recovered)");
  std::printf("READY port=%u\n", server.port());
  std::fflush(stdout);

  server.Join();  // returns once a SIGTERM/SIGINT drain completes
  net::InstallDrainOnSignal(nullptr, SIGTERM);
  net::InstallDrainOnSignal(nullptr, SIGINT);

  std::printf("drained: acked_ops=%llu index_size=%zu\n",
              static_cast<unsigned long long>(server.acked_ops()),
              index->Size());
  std::printf("METRICS_JSON %s\n", obs::GlobalJson("fptree_server").c_str());
  return 0;
}

}  // namespace
}  // namespace fptree

int main(int argc, char** argv) { return fptree::Run(argc, argv); }
