file(REMOVE_RECURSE
  "CMakeFiles/fptree_scm.dir/alloc.cc.o"
  "CMakeFiles/fptree_scm.dir/alloc.cc.o.d"
  "CMakeFiles/fptree_scm.dir/crash.cc.o"
  "CMakeFiles/fptree_scm.dir/crash.cc.o.d"
  "CMakeFiles/fptree_scm.dir/latency.cc.o"
  "CMakeFiles/fptree_scm.dir/latency.cc.o.d"
  "CMakeFiles/fptree_scm.dir/pool.cc.o"
  "CMakeFiles/fptree_scm.dir/pool.cc.o.d"
  "libfptree_scm.a"
  "libfptree_scm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fptree_scm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
