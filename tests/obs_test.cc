// obs/: the unified metrics registry — counter aggregation across threads,
// gauge pulls, histogram summaries/percentiles, subsystem absorption
// (scm.*/htm.*/tree.*), sampling control, and the JSON snapshot shape the
// bench binaries emit (METRICS_JSON lines).

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include "core/tree_stats.h"
#include "scm/stats.h"
#include "util/threading.h"

namespace fptree {
namespace obs {
namespace {

TEST(Counter, PointerStableAndSharedByName) {
  Counter* a = MetricsRegistry::Global().GetCounter("obs_test.shared");
  Counter* b = MetricsRegistry::Global().GetCounter("obs_test.shared");
  EXPECT_EQ(a, b);
  a->Reset();
  a->Add(3);
  b->Add(4);
  EXPECT_EQ(a->value(), 7u);
}

TEST(Counter, AggregatesAcrossThreads) {
  Counter* c = MetricsRegistry::Global().GetCounter("obs_test.mt");
  c->Reset();
  constexpr uint32_t kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  ThreadGroup tg;
  tg.Spawn(kThreads, [&](uint32_t) {
    for (uint64_t i = 0; i < kPerThread; ++i) c->Add();
  });
  tg.Join();
  EXPECT_EQ(c->value(), kThreads * kPerThread);
}

TEST(Gauge, PulledAtSnapshotTime) {
  uint64_t source = 5;
  MetricsRegistry::Global().SetGauge("obs_test.gauge",
                                     [&source] { return source; });
  EXPECT_EQ(MetricsRegistry::Global().TakeSnapshot().gauges.at(
                "obs_test.gauge"),
            5u);
  source = 9;
  EXPECT_EQ(MetricsRegistry::Global().TakeSnapshot().gauges.at(
                "obs_test.gauge"),
            9u);
  MetricsRegistry::Global().RemoveGauge("obs_test.gauge");
  EXPECT_EQ(MetricsRegistry::Global().TakeSnapshot().gauges.count(
                "obs_test.gauge"),
            0u);
}

TEST(LatencyHistogramTest, SummaryPercentilesBracketTheData) {
  LatencyHistogram h;
  // 1000 samples at 100ns, 10 outliers at 100us: p50 near 100,
  // p99 <= a bucket above 100, max bucket holds 100000.
  for (int i = 0; i < 1000; ++i) h.Record(100);
  for (int i = 0; i < 10; ++i) h.Record(100000);
  HistogramSummary s = HistogramSummary::From(h.Snap());
  EXPECT_EQ(s.count, 1010u);
  EXPECT_EQ(s.min_ns, 100u);
  EXPECT_EQ(s.max_ns, 100000u);
  // Log-bucketed percentiles: same bucket as the true value, so within a
  // small constant factor (bucket edges may land just under it).
  EXPECT_GE(s.p50_ns, 50u);
  EXPECT_LE(s.p50_ns, 200u);
  EXPECT_GE(s.p99_ns, 50u);
  EXPECT_LE(s.p99_ns, 200u);
  EXPECT_NEAR(s.avg_ns, (1000.0 * 100 + 10.0 * 100000) / 1010.0,
              s.avg_ns * 0.01);
}

TEST(LatencyHistogramTest, MergeAddsCounts) {
  LatencyHistogram h;
  h.Reset();
  Histogram local;
  local.Add(50);
  local.Add(60);
  h.Merge(local);
  h.Record(70);
  EXPECT_EQ(h.Snap().count(), 3u);
}

TEST(Sampling, IntervalRoundsToPowerOfTwoAndZeroDisables) {
  SetSampleInterval(0);
  EXPECT_EQ(SampleInterval(), 0u);
  EXPECT_FALSE(ShouldSample());
  EXPECT_FALSE(ShouldSample());

  SetSampleInterval(1);  // every op
  EXPECT_EQ(SampleInterval(), 1u);
  EXPECT_TRUE(ShouldSample());
  EXPECT_TRUE(ShouldSample());

  SetSampleInterval(100);  // rounds up to 128
  EXPECT_EQ(SampleInterval(), 128u);
  int sampled = 0;
  for (int i = 0; i < 1280; ++i) sampled += ShouldSample();
  EXPECT_EQ(sampled, 10);

  SetSampleInterval(64);  // restore default
}

TEST(SnapshotTest, AbsorbsScmThreadStats) {
  Snapshot before = MetricsRegistry::Global().TakeSnapshot();
  scm::ThreadStats().flushed_lines += 13;
  scm::ThreadStats().fences += 5;
  Snapshot after = MetricsRegistry::Global().TakeSnapshot();
  Snapshot d = after.DeltaSince(before);
  EXPECT_EQ(d.counters.at("scm.flushed_lines"), 13u);
  EXPECT_EQ(d.counters.at("scm.fences"), 5u);
}

TEST(SnapshotTest, AbsorbsTreeCounters) {
  Snapshot before = MetricsRegistry::Global().TakeSnapshot();
  core::TreeOpStats ops;
  ops.finds = 42;
  ops.leaf_splits = 2;
  core::FlushTreeStats(ops);
  Snapshot d = MetricsRegistry::Global().TakeSnapshot().DeltaSince(before);
  EXPECT_EQ(d.counters.at("tree.finds"), 42u);
  EXPECT_EQ(d.counters.at("tree.leaf_splits"), 2u);
}

TEST(SnapshotTest, DeltaClampsAtZeroAndKeepsGauges) {
  Snapshot a;
  a.counters["x"] = 10;
  Snapshot b;
  b.counters["x"] = 4;  // counter reset between snapshots
  b.gauges["g"] = 7;
  Snapshot d = b.DeltaSince(a);
  EXPECT_EQ(d.counters.at("x"), 0u);
  EXPECT_EQ(d.gauges.at("g"), 7u);
}

TEST(JsonTest, NestsOnFirstDotAndEmitsTag) {
  Snapshot s;
  s.counters["scm.fences"] = 3;
  s.counters["scm.flushed_lines"] = 4;
  s.counters["htm.commits"] = 9;
  s.counters["toplevel"] = 1;
  s.gauges["index.size"] = 100;
  Histogram h;
  h.Add(100);
  s.histograms["find"] = HistogramSummary::From(h);
  std::string json = s.ToJson("unit");

  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"bench\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"scm\":{\"fences\":3,\"flushed_lines\":4}"),
            std::string::npos);
  EXPECT_NE(json.find("\"htm\":{\"commits\":9}"), std::string::npos);
  EXPECT_NE(json.find("\"toplevel\":1"), std::string::npos);
  EXPECT_NE(json.find("\"index\":{\"size\":100}"), std::string::npos);
  EXPECT_NE(json.find("\"latency\":{\"find\":{\"count\":1,"),
            std::string::npos);
  // No adjacent-separator artifacts.
  EXPECT_EQ(json.find(",,"), std::string::npos);
  EXPECT_EQ(json.find("{,"), std::string::npos);
  EXPECT_EQ(json.find(",}"), std::string::npos);
}

TEST(JsonTest, GlobalJsonContainsSubsystemGroups) {
  std::string json = GlobalJson("shape");
  EXPECT_NE(json.find("\"bench\":\"shape\""), std::string::npos);
  EXPECT_NE(json.find("\"scm\":{"), std::string::npos);
  EXPECT_NE(json.find("\"htm\":{"), std::string::npos);
  EXPECT_NE(json.find("\"tree\":{"), std::string::npos);
}

TEST(RegistryTest, HistogramAppearsInSnapshotUnderLatencyPrefix) {
  LatencyHistogram* h =
      MetricsRegistry::Global().GetHistogram("obs_test_op");
  h->Reset();
  h->Record(500);
  Snapshot s = MetricsRegistry::Global().TakeSnapshot();
  ASSERT_EQ(s.histograms.count("obs_test_op"), 1u);
  EXPECT_EQ(s.histograms.at("obs_test_op").count, 1u);
  EXPECT_NE(s.ToJson().find("\"latency\":{"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace fptree
