// Network serving throughput: an in-process fptree_server instance fronted
// by many pipelined client connections (DESIGN.md §9). Two load shapes:
//
//  * closed loop (default): every connection keeps a fixed window of
//    requests in flight and issues a new one per response — measures the
//    saturated request rate at a given concurrency.
//  * open loop (--open --rate=N): every connection offers N requests/second
//    regardless of completions and reaps responses opportunistically —
//    measures sustained throughput and exposes queueing when the offered
//    rate exceeds capacity.
//
// One OS thread drives one connection, so --connections=64 really is 64
// concurrent pipelined TCP streams. The workload is a PUT/GET/SCAN mix over
// a keyspace preloaded through the server itself, i.e. every byte travels
// the full codec + epoll + index path. Ends with a drain (BeginDrain) and
// checks that every acked response was received — the zero-lost-acks
// acceptance bar — then METRICS_JSON.

#include <atomic>
#include <cstdio>
#include <cstring>

#include "bench_common.h"
#include "net/client.h"
#include "net/server.h"
#include "util/threading.h"

namespace fptree {
namespace bench {
namespace {

struct NetFlags {
  uint32_t connections = 64;
  uint32_t window = 16;      // closed-loop in-flight window per connection
  uint64_t rate = 20000;     // open-loop offered req/s per connection
  bool open_loop = false;
  uint32_t io_threads = 4;
  uint32_t shards = 1;       // >1 serves through the sharded engine
  uint32_t batch = 1;        // copied from Flags::batch; >1 = MGET/MPUT mode

  static NetFlags Parse(int argc, char** argv) {
    NetFlags f;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--connections=", 14) == 0) f.connections = std::strtoul(a + 14, nullptr, 10);
      if (std::strncmp(a, "--window=", 9) == 0) f.window = std::strtoul(a + 9, nullptr, 10);
      if (std::strncmp(a, "--rate=", 7) == 0) f.rate = std::strtoull(a + 7, nullptr, 10);
      if (std::strncmp(a, "--io-threads=", 13) == 0) f.io_threads = std::strtoul(a + 13, nullptr, 10);
      if (std::strncmp(a, "--shards=", 9) == 0) f.shards = std::strtoul(a + 9, nullptr, 10);
      if (std::strcmp(a, "--open") == 0) f.open_loop = true;
    }
    if (f.connections == 0) f.connections = 1;
    if (f.window == 0) f.window = 1;
    if (f.shards == 0) f.shards = 1;
    return f;
  }
};

/// One client connection's deterministic op stream. Scalar mode (batch=1):
/// 35% PUT, 10% UPSERT, 45% GET, 10% SCAN over the shared keyspace. Batch
/// mode (--batch=N > 1): every frame is a batch op carrying N keys — 45%
/// MPUT, 55% MGET (matching the scalar write/read split; SCAN drops out) —
/// so one queued "op" is one frame and N key-ops.
struct OpStream {
  Random64 rng;
  uint64_t keys;
  uint32_t batch = 1;
  std::vector<std::string> kbuf;
  std::vector<std::string_view> kviews;
  std::vector<uint64_t> vals;

  void QueueNext(net::Client* c) {
    uint64_t dice = rng.Next() % 100;
    if (batch > 1) {
      kbuf.clear();
      kviews.clear();
      vals.clear();
      for (uint32_t i = 0; i < batch; ++i) {
        kbuf.push_back(MakeVarKey(rng.Next() % keys));
        vals.push_back(dice);
      }
      // Views only after kbuf stops growing (reallocation safety).
      for (const std::string& k : kbuf) kviews.push_back(k);
      if (dice < 45) {
        c->QueueMput(kviews.data(), vals.data(), batch);
      } else {
        c->QueueMget(kviews.data(), batch);
      }
      return;
    }
    uint64_t k = rng.Next() % keys;
    if (dice < 35) {
      c->QueuePut(MakeVarKey(k), dice);
    } else if (dice < 45) {
      c->QueueUpsert(MakeVarKey(k), dice);
    } else if (dice < 90) {
      c->QueueGet(MakeVarKey(k));
    } else {
      c->QueueScan(MakeVarKey(k), 16);
    }
  }
};

struct RunResult {
  uint64_t sent = 0;
  uint64_t received = 0;
  double seconds = 0;
};

RunResult RunClosedLoop(const std::string& host, uint16_t port,
                        const NetFlags& nf, uint64_t keys,
                        uint64_t ops_per_conn) {
  std::atomic<uint64_t> sent{0}, received{0};
  SpinBarrier barrier(nf.connections + 1);
  ThreadGroup tg;
  tg.Spawn(nf.connections, [&](uint32_t id) {
    net::Client client;
    if (!client.Connect(host, port).ok()) return;
    OpStream stream{Random64(1000 + id), keys, nf.batch};
    barrier.Wait();
    uint64_t mine_sent = 0, mine_recv = 0;
    net::Response resp;
    // Prime the pipeline window, then one-in-one-out until the budget is
    // spent, then drain the window.
    for (uint32_t i = 0; i < nf.window && mine_sent < ops_per_conn; ++i) {
      stream.QueueNext(&client);
      ++mine_sent;
    }
    if (!client.Flush().ok()) return;
    while (mine_recv < ops_per_conn) {
      if (!client.ReadResponse(&resp).ok()) break;
      ++mine_recv;
      if (mine_sent < ops_per_conn) {
        stream.QueueNext(&client);
        ++mine_sent;
        if (!client.Flush().ok()) break;
      }
    }
    sent.fetch_add(mine_sent);
    received.fetch_add(mine_recv);
    barrier.Wait();
  });
  barrier.Wait();
  Stopwatch sw;
  barrier.Wait();
  RunResult r;
  r.seconds = sw.ElapsedSeconds();
  tg.Join();
  r.sent = sent.load();
  r.received = received.load();
  return r;
}

RunResult RunOpenLoop(const std::string& host, uint16_t port,
                      const NetFlags& nf, uint64_t keys,
                      uint64_t ops_per_conn) {
  std::atomic<uint64_t> sent{0}, received{0};
  SpinBarrier barrier(nf.connections + 1);
  ThreadGroup tg;
  tg.Spawn(nf.connections, [&](uint32_t id) {
    net::Client client;
    if (!client.Connect(host, port).ok()) return;
    OpStream stream{Random64(2000 + id), keys, nf.batch};
    barrier.Wait();
    uint64_t mine_sent = 0, mine_recv = 0;
    net::Response resp;
    const uint64_t gap_ns = nf.rate == 0 ? 0 : 1000000000ull / nf.rate;
    uint64_t next_send = NowNanos();
    bool alive = true;
    while (alive && mine_sent < ops_per_conn) {
      // Offered-rate pacing: send whenever the schedule says so, reap
      // whatever responses have arrived in the meantime.
      if (NowNanos() >= next_send) {
        stream.QueueNext(&client);
        ++mine_sent;
        next_send += gap_ns;
        if (!client.Flush().ok()) break;
      }
      bool got = true;
      while (got) {
        if (!client.TryReadResponse(&resp, &got).ok()) {
          alive = false;
          break;
        }
        if (got) ++mine_recv;
      }
    }
    // Reap the tail.
    while (alive && mine_recv < mine_sent) {
      if (!client.ReadResponse(&resp).ok()) break;
      ++mine_recv;
    }
    sent.fetch_add(mine_sent);
    received.fetch_add(mine_recv);
    barrier.Wait();
  });
  barrier.Wait();
  Stopwatch sw;
  barrier.Wait();
  RunResult r;
  r.seconds = sw.ElapsedSeconds();
  tg.Join();
  r.sent = sent.load();
  r.received = received.load();
  return r;
}

void RunOne(const std::string& kind, const Flags& flags, const NetFlags& nf) {
  // --shards>1 serves the same tree through the sharded engine (one pool
  // file per shard, merged-cursor scans); --shards=1 keeps the single-pool
  // path so existing series stay comparable.
  std::unique_ptr<ScopedPool> pool;
  std::unique_ptr<ScopedShardedVar> sharded;
  std::unique_ptr<index::VarIndex> single;
  index::VarIndex* index = nullptr;
  if (nf.shards > 1) {
    sharded = std::make_unique<ScopedShardedVar>(
        kind, nf.shards, /*shard_bytes=*/size_t{1} << 28);
    index = sharded->get();
  } else {
    pool = std::make_unique<ScopedPool>(size_t{2} << 30);
    Status st =
        index::MakeVarIndexChecked(kind, pool->get(), /*locked=*/true,
                                   &single);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      std::exit(2);
    }
    index = single.get();
  }

  net::Server::Options sopts;
  sopts.io_threads = nf.io_threads;
  net::Server server(index, sopts);
  Status s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return;
  }

  // Preload through the wire so the steady-state mix sees a warm tree.
  {
    net::Client loader;
    if (!loader.Connect("127.0.0.1", server.port()).ok()) return;
    for (uint64_t k = 0; k < flags.keys; ++k) {
      loader.QueuePut(MakeVarKey(k), k);
      if (loader.inflight() >= 256) {
        loader.Flush().ok();
        net::Response resp;
        while (loader.inflight() > 0) {
          if (!loader.ReadResponse(&resp).ok()) return;
        }
      }
    }
    loader.Flush().ok();
    net::Response resp;
    while (loader.inflight() > 0) {
      if (!loader.ReadResponse(&resp).ok()) return;
    }
  }

  uint64_t ops_per_conn = flags.ops / nf.connections;
  if (ops_per_conn == 0) ops_per_conn = 1;
  RunResult r = nf.open_loop
                    ? RunOpenLoop("127.0.0.1", server.port(), nf, flags.keys,
                                  ops_per_conn)
                    : RunClosedLoop("127.0.0.1", server.port(), nf,
                                    flags.keys, ops_per_conn);

  server.Shutdown();

  // Zero lost acked writes: the server acked (fully wrote) at least every
  // response the clients consumed; the preload responses are included.
  bool acks_ok = server.acked_ops() >= r.received;
  // In batch mode every frame carries nf.batch key-ops; report key-op
  // throughput so --batch series compare directly against scalar runs.
  double kops =
      static_cast<double>(r.received) * (nf.batch > 1 ? nf.batch : 1);
  std::printf(
      "%-14s %-6s conns=%3u window=%2u shards=%u batch=%u  %9.1f kops/s  "
      "sent=%llu recv=%llu acked=%llu %s\n",
      kind.c_str(), nf.open_loop ? "open" : "closed", nf.connections,
      nf.window, nf.shards, nf.batch, kops / r.seconds / 1e3,
      static_cast<unsigned long long>(r.sent),
      static_cast<unsigned long long>(r.received),
      static_cast<unsigned long long>(server.acked_ops()),
      acks_ok ? "" : "ACK-MISMATCH");
}

}  // namespace
}  // namespace bench
}  // namespace fptree

int main(int argc, char** argv) {
  using namespace fptree;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  bench::NetFlags nf = bench::NetFlags::Parse(argc, argv);
  nf.batch = flags.batch;
  if (flags.quick) {
    flags.keys = std::min<uint64_t>(flags.keys, 20000);
    flags.ops = std::min<uint64_t>(flags.ops, 50000);
    nf.connections = std::min<uint32_t>(nf.connections, 16);
  }
  scm::LatencyModel::Disable();

  bench::PrintHeader("network serving throughput (pipelined binary protocol)");
  for (const std::string& kind :
       flags.VarTrees({"fptree-c-var", "hashmap"})) {
    bench::RunOne(kind, flags, nf);
  }
  bench::EmitMetricsJson("net_throughput");
  return 0;
}
