// Copyright (c) FPTree reproduction authors.
//
// Process-wide configuration and telemetry for the parallel recovery path
// (paper §6.1, Fig. 7 "recovery"): rebuilding the DRAM inner nodes from the
// persistent leaves is embarrassingly parallel — each leaf yields one
// (max_key, leaf) pair independently — so the trees shard the leaf scan
// across ParallelShards (util/threading.h) and merge per-shard vectors
// before the bottom-up BulkBuild.
//
// The thread count is a process-wide knob rather than a per-tree parameter
// because recovery runs inside tree constructors (attach = recover), where
// no per-call argument can reach; benches set it from --recover-threads.
// The last-recovery telemetry feeds the obs registry's tree.recovery_nanos
// / tree.recover_threads gauges (src/obs/metrics.cc).

#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace fptree {
namespace core {

namespace internal {
inline std::atomic<uint32_t>& RecoverThreadsKnob() {
  static std::atomic<uint32_t> g{0};  // 0 = hardware_concurrency
  return g;
}
inline std::atomic<uint64_t>& LastRecoveryNanosSlot() {
  static std::atomic<uint64_t> g{0};
  return g;
}
inline std::atomic<uint64_t>& LastRecoverThreadsSlot() {
  static std::atomic<uint64_t> g{0};
  return g;
}
}  // namespace internal

/// Sets the recovery scan width; 0 restores the default
/// (hardware_concurrency).
inline void SetRecoverThreads(uint32_t n) {
  internal::RecoverThreadsKnob().store(n, std::memory_order_relaxed);
}

/// Effective recovery thread count (always >= 1).
inline uint32_t RecoverThreads() {
  uint32_t n =
      internal::RecoverThreadsKnob().load(std::memory_order_relaxed);
  if (n == 0) n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

/// Recorded by every tree recovery; surfaced as obs gauges.
inline void RecordRecovery(uint64_t nanos, uint32_t threads) {
  internal::LastRecoveryNanosSlot().store(nanos, std::memory_order_relaxed);
  internal::LastRecoverThreadsSlot().store(threads,
                                           std::memory_order_relaxed);
}

inline uint64_t LastRecoveryNanos() {
  return internal::LastRecoveryNanosSlot().load(std::memory_order_relaxed);
}

inline uint64_t LastRecoverThreads() {
  return internal::LastRecoverThreadsSlot().load(std::memory_order_relaxed);
}

}  // namespace core
}  // namespace fptree
