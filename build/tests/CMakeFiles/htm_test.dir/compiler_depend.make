# Empty compiler generated dependencies file for htm_test.
# This may be replaced when dependencies are built.
