// memcached-like cache demo (paper §6.4): a persistent concurrent FPTree
// replaces the hash table, several client threads issue SET/GET traffic,
// and the cache contents survive a restart — unlike memcached's.
//
//   ./kvcache_demo

#include <cstdio>
#include <thread>

#include "apps/kvcache/kvcache.h"
#include "scm/latency.h"
#include "util/threading.h"

int main() {
  using namespace fptree;

  const std::string path = "/tmp/fptree_kvcache_demo.pool";
  scm::Pool::Destroy(path).ok();
  scm::LatencyModel::Config().dram_ns = 90;
  scm::LatencyModel::SetScmLatency(160);

  std::unique_ptr<scm::Pool> pool;
  scm::Pool::Options options{.size = 256u << 20, .randomize_base = true};
  scm::Pool::Create(path, 1, options, &pool).ok();

  {
    apps::KVCache cache(index::MakeVarIndex("fptree-c-var", pool.get()),
                        apps::KVCache::Options{});

    constexpr uint32_t kClients = 4;
    constexpr uint64_t kPerClient = 20000;
    ThreadGroup clients;
    Stopwatch sw;
    clients.Spawn(kClients, [&](uint32_t id) {
      char key[32];
      for (uint64_t i = 0; i < kPerClient; ++i) {
        std::snprintf(key, sizeof(key), "session:%u:%llu", id,
                      static_cast<unsigned long long>(i));
        cache.Set(key, id * kPerClient + i);
      }
      uint64_t v;
      for (uint64_t i = 0; i < kPerClient; ++i) {
        std::snprintf(key, sizeof(key), "session:%u:%llu", id,
                      static_cast<unsigned long long>(i));
        cache.Get(key, &v);
      }
    });
    clients.Join();
    double secs = sw.ElapsedSeconds();
    std::printf("%llu requests from %u clients in %.2f s (%.0f Kops/s)\n",
                static_cast<unsigned long long>(2 * kClients * kPerClient),
                kClients, secs, 2 * kClients * kPerClient / secs / 1e3);
    std::printf("items: %zu, hits: %llu/%llu\n", cache.ItemCount(),
                static_cast<unsigned long long>(cache.stats().get_hits.load()),
                static_cast<unsigned long long>(cache.stats().gets.load()));
  }

  // A memcached restart loses everything; this cache recovers its contents.
  pool.reset();
  scm::Pool::Open(path, 1, options, &pool).ok();
  apps::KVCache revived(index::MakeVarIndex("fptree-c-var", pool.get()),
                        apps::KVCache::Options{});
  uint64_t v = 0;
  bool hit = revived.Get("session:2:11", &v);
  std::printf("after restart: %zu items, get(session:2:11) -> hit=%d val=%llu\n",
              revived.ItemCount(), hit, static_cast<unsigned long long>(v));

  pool.reset();
  scm::Pool::Destroy(path).ok();
  return 0;
}
