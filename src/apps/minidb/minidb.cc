#include "apps/minidb/minidb.h"

#include "util/random.h"

namespace fptree {
namespace apps {

void MiniDb::Load() {
  // Sequentially generated Subscriber ids — the TATP warm-up's "highly
  // skewed insertion workload" the paper highlights as the NV-Tree's
  // pathological case (§6.4).
  Random64 rng(20160626);
  const uint64_t n = options_.subscribers;
  for (uint64_t s_id = 0; s_id < n; ++s_id) {
    uint64_t rowid = sub_bit_->size();
    sub_bit_->Append(rng.Uniform(2));
    sub_msc_->Append(rng.Uniform(1 << 16));
    sub_vlr_->Append(rng.Uniform(1 << 16));
    bool ok = index_->Insert(s_id, rowid);
    assert(ok);
    (void)ok;

    // 1..4 access-info rows per subscriber (TATP spec: 25% each count).
    uint64_t n_ai = 1 + rng.Uniform(4);
    for (uint64_t t = 0; t < n_ai; ++t) {
      uint64_t ai_row = ai_data_->size();
      ai_data_->Append(rng.Next() & 0xFFFFFFFF);
      ai_key_->Append(s_id * 4 + t);
      index_->Insert(kAccessBase + s_id * 4 + t, ai_row);
    }
    // 1..4 special-facility rows; each with 0..3 call forwardings.
    uint64_t n_sf = 1 + rng.Uniform(4);
    for (uint64_t t = 0; t < n_sf; ++t) {
      uint64_t sf_row = sf_active_->size();
      sf_active_->Append(rng.Bernoulli(0.85) ? 1 : 0);
      sf_key_->Append(s_id * 4 + t);
      index_->Insert(kSpecialBase + s_id * 4 + t, sf_row);
      uint64_t n_cf = rng.Uniform(4);
      for (uint64_t c = 0; c < n_cf; ++c) {
        uint64_t start = 8 * c;  // 0, 8, 16 per TATP
        uint64_t cf_row = cf_number_->size();
        cf_number_->Append(rng.Next() & 0xFFFFFFFFFFFFULL);
        cf_end_->Append(start + 1 + rng.Uniform(8));
        cf_key_->Append((s_id * 4 + t) * 24 + start);
        index_->Insert(kForwardBase + (s_id * 4 + t) * 24 + start, cf_row);
      }
    }
  }
}

}  // namespace apps
}  // namespace fptree
