// util/: RNG determinism and uniformity, Zipf skew, fingerprint hash
// distribution (the property §4.2's expected-probe analysis depends on),
// histogram, status, barrier.

#include <gtest/gtest.h>

#include <array>
#include <set>

#include "util/hash.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/status.h"
#include "util/threading.h"
#include "util/zipf.h"

namespace fptree {
namespace {

TEST(Random64, DeterministicForSameSeed) {
  Random64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Random64, DifferentSeedsDiffer) {
  Random64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(Random64, UniformInRange) {
  Random64 r(3);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = r.Range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Random64, NextDoubleInUnitInterval) {
  Random64 r(4);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Random64, UniformityChiSquaredish) {
  Random64 r(5);
  std::array<int, 16> buckets{};
  constexpr int kN = 160000;
  for (int i = 0; i < kN; ++i) ++buckets[r.Uniform(16)];
  for (int b : buckets) {
    EXPECT_GT(b, kN / 16 * 0.9);
    EXPECT_LT(b, kN / 16 * 1.1);
  }
}

TEST(ShuffledRange, IsAPermutation) {
  auto v = ShuffledRange(1000, 9);
  std::set<uint64_t> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 1000u);
  EXPECT_EQ(*s.begin(), 0u);
  EXPECT_EQ(*s.rbegin(), 999u);
  // And actually shuffled.
  int fixed = 0;
  for (size_t i = 0; i < v.size(); ++i) fixed += (v[i] == i);
  EXPECT_LT(fixed, 50);
}

TEST(Zipf, HottestKeyDominates) {
  ZipfGenerator z(100000, 0.99, 11);
  std::array<int, 10> top{};
  int other = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    uint64_t v = z.Next();
    if (v < 10) {
      ++top[v];
    } else {
      ++other;
    }
  }
  // With theta=0.99 the top-10 ranks draw a large share.
  int top_sum = 0;
  for (int t : top) top_sum += t;
  EXPECT_GT(top_sum, kN / 5);
  EXPECT_GT(top[0], top[9]);
}

TEST(Zipf, ValuesInRange) {
  ZipfGenerator z(50, 0.5, 12);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.Next(), 50u);
}

TEST(Fingerprint, UniformOver256Buckets) {
  // §4.2 assumes "a hash function that generates uniformly distributed
  // fingerprints"; verify ours is close over sequential keys (the common
  // dense-key workload).
  std::array<int, 256> buckets{};
  constexpr int kN = 256 * 1000;
  for (uint64_t k = 0; k < kN; ++k) ++buckets[Fingerprint(k)];
  for (int b : buckets) {
    EXPECT_GT(b, 1000 * 0.85);
    EXPECT_LT(b, 1000 * 1.15);
  }
}

TEST(Fingerprint, StringKeysUniform) {
  std::array<int, 256> buckets{};
  constexpr int kN = 256 * 500;
  for (int k = 0; k < kN; ++k) {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016d", k);
    ++buckets[Fingerprint(std::string_view(buf, 16))];
  }
  for (int b : buckets) {
    EXPECT_GT(b, 500 * 0.8);
    EXPECT_LT(b, 500 * 1.2);
  }
}

TEST(Fingerprint, DeterministicPerKey) {
  EXPECT_EQ(Fingerprint(uint64_t{12345}), Fingerprint(uint64_t{12345}));
  EXPECT_EQ(Fingerprint(std::string_view("abc")),
            Fingerprint(std::string_view("abc")));
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v * 100);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 10000u);
  EXPECT_DOUBLE_EQ(h.Average(), 5050.0);
  EXPECT_GT(h.Percentile(99), h.Percentile(50));
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  a.Add(10);
  b.Add(20);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.sum(), 30u);
  EXPECT_EQ(a.max(), 20u);
}

TEST(Histogram, EmptyIsSafe) {
  Histogram h;
  EXPECT_EQ(h.Average(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.min(), 0u);
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: key 42");
}

TEST(SpinBarrier, SynchronizesThreads) {
  constexpr int kThreads = 4;
  SpinBarrier barrier(kThreads);
  std::atomic<int> phase0{0};
  std::atomic<bool> ok{true};
  ThreadGroup tg;
  tg.Spawn(kThreads, [&](uint32_t) {
    phase0.fetch_add(1);
    barrier.Wait();
    if (phase0.load() != kThreads) ok.store(false);
    barrier.Wait();  // reusable
  });
  tg.Join();
  EXPECT_TRUE(ok.load());
}

}  // namespace
}  // namespace fptree
