file(REMOVE_RECURSE
  "CMakeFiles/scm_alloc_test.dir/scm_alloc_test.cc.o"
  "CMakeFiles/scm_alloc_test.dir/scm_alloc_test.cc.o.d"
  "scm_alloc_test"
  "scm_alloc_test.pdb"
  "scm_alloc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scm_alloc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
