# Empty dependencies file for fptree_concurrent_test.
# This may be replaced when dependencies are built.
