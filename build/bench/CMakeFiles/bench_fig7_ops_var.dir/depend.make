# Empty dependencies file for bench_fig7_ops_var.
# This may be replaced when dependencies are built.
