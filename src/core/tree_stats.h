// Copyright (c) FPTree reproduction authors.
//
// Operation counters shared by all single-threaded tree implementations;
// the benchmarks read these (e.g. in-leaf key probes for Fig. 4).

#pragma once

#include <cstdint>

namespace fptree {
namespace core {

struct TreeOpStats {
  uint64_t finds = 0;
  uint64_t key_probes = 0;  ///< in-leaf key probes during search (Fig. 4)
  uint64_t leaf_splits = 0;
  uint64_t leaf_deletes = 0;
  uint64_t rebuilds = 0;    ///< NV-Tree inner-node rebuilds (§6.4)

  void Clear() { *this = TreeOpStats{}; }
};

}  // namespace core
}  // namespace fptree
