// Persistent allocator: the paper-§2 leak-prevention protocol (allocate into
// a caller pptr living in SCM), free-list recycling, recovery after crashes
// at every allocator crash window.

#include "scm/alloc.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <set>

#include "scm/crash.h"
#include "scm/latency.h"
#include "scm/pmem.h"
#include "scm/pool.h"

namespace fptree {
namespace scm {
namespace {

std::string TestPath(const std::string& name) {
  return "/tmp/fptree_test_" + std::to_string(::getpid()) + "_" + name;
}

// A little SCM-resident struct holding pptr slots to allocate into
// (the protocol demands targets live in SCM).
struct SlotPage {
  VoidPPtr slots[64];
};

class AllocTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LatencyModel::Disable();
    path_ = TestPath("alloc");
    Pool::Destroy(path_).ok();
    Reopen(/*create=*/true);
  }

  void TearDown() override {
    pool_.reset();
    CrashSim::Disable();
    Pool::Destroy(path_).ok();
  }

  void Reopen(bool create = false) {
    pool_.reset();
    Pool::Options opts{.size = 16u << 20, .randomize_base = true};
    if (create) {
      ASSERT_TRUE(Pool::Create(path_, 1, opts, &pool_).ok());
      // Bootstrap a slot page anchored at the pool root.
      ASSERT_TRUE(
          pool_->allocator()->Allocate(&pool_->header()->root,
                                       sizeof(SlotPage)).ok());
      SlotPage* page = Page();
      for (auto& s : page->slots) pmem::StorePPtr(&s, VoidPPtr::Null());
      pmem::Persist(page, sizeof(*page));
    } else {
      ASSERT_TRUE(Pool::Open(path_, 1, opts, &pool_).ok());
    }
  }

  SlotPage* Page() { return static_cast<SlotPage*>(pool_->root().get()); }
  PAllocator* alloc() { return pool_->allocator(); }

  std::string path_;
  std::unique_ptr<Pool> pool_;
};

TEST_F(AllocTest, AllocatePublishesIntoTarget) {
  VoidPPtr* slot = &Page()->slots[0];
  ASSERT_TRUE(alloc()->Allocate(slot, 100).ok());
  EXPECT_FALSE(slot->IsNull());
  EXPECT_EQ(slot->pool_id, 1u);
  // Payload is cache-line aligned.
  EXPECT_EQ(slot->offset % kCacheLineSize, 0u);
}

TEST_F(AllocTest, RejectsVolatileTarget) {
  VoidPPtr on_stack = VoidPPtr::Null();
  Status s = alloc()->Allocate(&on_stack, 64);
  EXPECT_FALSE(s.ok()) << "target must reside in SCM";
}

TEST_F(AllocTest, RejectsZeroSize) {
  EXPECT_FALSE(alloc()->Allocate(&Page()->slots[0], 0).ok());
}

TEST_F(AllocTest, DistinctBlocks) {
  std::set<uint64_t> offsets;
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(alloc()->Allocate(&Page()->slots[i], 64).ok());
    EXPECT_TRUE(offsets.insert(Page()->slots[i].offset).second);
  }
}

TEST_F(AllocTest, DeallocateNullsTargetAndRecycles) {
  VoidPPtr* slot = &Page()->slots[0];
  ASSERT_TRUE(alloc()->Allocate(slot, 128).ok());
  uint64_t off = slot->offset;
  ASSERT_TRUE(alloc()->Deallocate(slot).ok());
  EXPECT_TRUE(slot->IsNull());
  // Same-size allocation reuses the freed block.
  VoidPPtr* slot2 = &Page()->slots[1];
  ASSERT_TRUE(alloc()->Allocate(slot2, 128).ok());
  EXPECT_EQ(slot2->offset, off);
}

TEST_F(AllocTest, DeallocateNullIsNoop) {
  VoidPPtr* slot = &Page()->slots[0];
  EXPECT_TRUE(slot->IsNull());
  EXPECT_TRUE(alloc()->Deallocate(slot).ok());
}

TEST_F(AllocTest, AccountingTracksAllocations) {
  uint64_t base_blocks = alloc()->allocated_blocks();
  ASSERT_TRUE(alloc()->Allocate(&Page()->slots[0], 64).ok());
  ASSERT_TRUE(alloc()->Allocate(&Page()->slots[1], 192).ok());
  EXPECT_EQ(alloc()->allocated_blocks(), base_blocks + 2);
  ASSERT_TRUE(alloc()->Deallocate(&Page()->slots[0]).ok());
  EXPECT_EQ(alloc()->allocated_blocks(), base_blocks + 1);
}

TEST_F(AllocTest, StateSurvivesCleanReopen) {
  ASSERT_TRUE(alloc()->Allocate(&Page()->slots[0], 64).ok());
  ASSERT_TRUE(alloc()->Allocate(&Page()->slots[1], 64).ok());
  ASSERT_TRUE(alloc()->Deallocate(&Page()->slots[0]).ok());
  uint64_t blocks = alloc()->allocated_blocks();
  uint64_t used = alloc()->heap_used_bytes();

  Reopen();
  EXPECT_EQ(alloc()->allocated_blocks(), blocks);
  EXPECT_EQ(alloc()->heap_used_bytes(), used);
  EXPECT_TRUE(Page()->slots[0].IsNull());
  EXPECT_FALSE(Page()->slots[1].IsNull());
}

TEST_F(AllocTest, ExhaustionReturnsResourceExhausted) {
  VoidPPtr* slot = &Page()->slots[0];
  Status s = alloc()->Allocate(slot, pool_->size());  // cannot fit
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(slot->IsNull());
  // Allocator remains usable.
  EXPECT_TRUE(alloc()->Allocate(slot, 64).ok());
}

// --- Crash matrix ---------------------------------------------------------

class AllocCrashTest : public AllocTest {
 protected:
  void SetUp() override {
    AllocTest::SetUp();
    CrashSim::Enable();
  }

  // Arms `point`, runs `op`, expects the crash, then simulates power loss
  // and reopens the pool (which runs allocator recovery).
  template <typename Op>
  void CrashAt(const std::string& point, Op op) {
    CrashSim::ArmCrashPoint(point);
    bool crashed = false;
    try {
      op();
    } catch (const CrashException& e) {
      crashed = true;
      EXPECT_EQ(e.point(), point);
    }
    ASSERT_TRUE(crashed) << "crash point " << point << " was not reached";
    CrashSim::SimulateCrash();
    Reopen();
    CrashSim::Enable();
  }

  // Invariant: the allocator's allocated set matches the slot page exactly
  // (every allocated block is referenced by exactly one non-null slot).
  void ExpectNoLeaks() {
    std::set<uint64_t> reachable;
    reachable.insert(pool_->root().offset);  // the slot page itself
    for (const auto& s : Page()->slots) {
      if (!s.IsNull()) reachable.insert(s.offset);
    }
    std::set<uint64_t> allocated;
    for (uint64_t off : alloc()->AllocatedPayloadOffsets()) {
      allocated.insert(off);
    }
    EXPECT_EQ(allocated, reachable);
  }
};

TEST_F(AllocCrashTest, CrashAfterLogBeforeBlockChoice) {
  CrashAt("palloc.alloc.logged",
          [&] { alloc()->Allocate(&Page()->slots[0], 64).ok(); });
  EXPECT_TRUE(Page()->slots[0].IsNull());
  ExpectNoLeaks();
  // Allocator usable after recovery.
  EXPECT_TRUE(alloc()->Allocate(&Page()->slots[0], 64).ok());
  ExpectNoLeaks();
}

TEST_F(AllocCrashTest, CrashAfterBlockChosen) {
  CrashAt("palloc.alloc.block_chosen",
          [&] { alloc()->Allocate(&Page()->slots[0], 64).ok(); });
  EXPECT_TRUE(Page()->slots[0].IsNull()) << "allocation must roll back";
  ExpectNoLeaks();
}

TEST_F(AllocCrashTest, CrashAfterHeaderMarked) {
  CrashAt("palloc.alloc.header_marked",
          [&] { alloc()->Allocate(&Page()->slots[0], 64).ok(); });
  EXPECT_TRUE(Page()->slots[0].IsNull());
  ExpectNoLeaks();
}

TEST_F(AllocCrashTest, CrashAfterTopBumped) {
  CrashAt("palloc.alloc.top_bumped",
          [&] { alloc()->Allocate(&Page()->slots[0], 64).ok(); });
  EXPECT_TRUE(Page()->slots[0].IsNull());
  ExpectNoLeaks();
}

TEST_F(AllocCrashTest, CrashAfterDelivered) {
  CrashAt("palloc.alloc.delivered",
          [&] { alloc()->Allocate(&Page()->slots[0], 64).ok(); });
  // Delivered: the data structure received the memory; recovery completes.
  EXPECT_FALSE(Page()->slots[0].IsNull());
  ExpectNoLeaks();
}

TEST_F(AllocCrashTest, CrashAfterDeallocLogged) {
  ASSERT_TRUE(alloc()->Allocate(&Page()->slots[0], 64).ok());
  CrashAt("palloc.dealloc.logged",
          [&] { alloc()->Deallocate(&Page()->slots[0]).ok(); });
  // Recovery redoes the deallocation (log was durable).
  EXPECT_TRUE(Page()->slots[0].IsNull());
  ExpectNoLeaks();
}

TEST_F(AllocCrashTest, CrashAfterDeallocNulled) {
  ASSERT_TRUE(alloc()->Allocate(&Page()->slots[0], 64).ok());
  CrashAt("palloc.dealloc.nulled",
          [&] { alloc()->Deallocate(&Page()->slots[0]).ok(); });
  EXPECT_TRUE(Page()->slots[0].IsNull());
  ExpectNoLeaks();
}

TEST_F(AllocCrashTest, CrashAfterDeallocFreed) {
  ASSERT_TRUE(alloc()->Allocate(&Page()->slots[0], 64).ok());
  CrashAt("palloc.dealloc.freed",
          [&] { alloc()->Deallocate(&Page()->slots[0]).ok(); });
  EXPECT_TRUE(Page()->slots[0].IsNull());
  ExpectNoLeaks();
}

TEST_F(AllocCrashTest, FreeListBlockCrashWindows) {
  // Exercise the free-list (non-frontier) AcquireBlock path.
  ASSERT_TRUE(alloc()->Allocate(&Page()->slots[0], 64).ok());
  ASSERT_TRUE(alloc()->Deallocate(&Page()->slots[0]).ok());
  CrashAt("palloc.alloc.header_marked",
          [&] { alloc()->Allocate(&Page()->slots[1], 64).ok(); });
  EXPECT_TRUE(Page()->slots[1].IsNull());
  ExpectNoLeaks();
  // The rolled-back block must be allocatable again.
  ASSERT_TRUE(alloc()->Allocate(&Page()->slots[1], 64).ok());
  ExpectNoLeaks();
}

TEST_F(AllocCrashTest, RepeatedCrashesThenFullRecovery) {
  const char* points[] = {"palloc.alloc.logged", "palloc.alloc.block_chosen",
                          "palloc.alloc.header_marked",
                          "palloc.alloc.delivered"};
  int slot = 0;
  for (const char* pt : points) {
    CrashAt(pt, [&] { alloc()->Allocate(&Page()->slots[slot], 64).ok(); });
    ExpectNoLeaks();
    ++slot;
  }
  // Steady state still works.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(alloc()->Allocate(&Page()->slots[20 + i], 64).ok());
  }
  ExpectNoLeaks();
}

}  // namespace
}  // namespace scm
}  // namespace fptree
