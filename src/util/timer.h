// Copyright (c) FPTree reproduction authors.
//
// Wall-clock timing helpers for benchmarks and the SCM latency calibrator.

#pragma once

#include <chrono>
#include <cstdint>

namespace fptree {

/// \brief Nanoseconds since an arbitrary epoch (steady clock).
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// \brief Simple stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(NowNanos()) {}
  void Reset() { start_ = NowNanos(); }
  uint64_t ElapsedNanos() const { return NowNanos() - start_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }

 private:
  uint64_t start_;
};

}  // namespace fptree
